//! # ccr-trace — structured event tracing for the refinement pipeline
//!
//! The paper's claims are *trajectory* claims: messages per rendezvous
//! (§3.3), state-space sizes (Table 3), forward progress (§2.5). This
//! crate gives every execution layer a common, cheap way to narrate its
//! trajectory: a [`TraceEvent`] enum covering the events the paper
//! reasons about, and a [`TraceSink`] trait with three implementations —
//!
//! * [`NullSink`] — the default; `enabled()` is `false` and `emit` is an
//!   empty inlineable body, so instrumented code costs one predictable
//!   branch per step when tracing is off.
//! * [`RingSink`] — a bounded in-memory ring keeping the last `cap`
//!   events; what you want for counterexample tails.
//! * [`JsonlSink`] — a buffered writer emitting one serde-serialized
//!   JSON object per line (JSONL), the interchange format of the `ccr`
//!   CLI's `--trace` flag and the model checker's counterexample export.
//!
//! Event producers live in `ccr-runtime` (per-step simulator events),
//! `ccr-mc` (search heartbeats and counterexample paths) and `ccr-dsm`
//! (machine runs). See `docs/observability.md` for the schema.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod json_check;

use serde::Serialize;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// One observable event in a protocol execution or a state-space search.
///
/// Serialized (externally tagged) as `{"<Variant>":{...fields...}}`, one
/// object per JSONL line. `seq` is the 0-based step index of the run the
/// event belongs to; several events may share a `seq` (a transition plus
/// the sends/receives it performs).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum TraceEvent {
    /// A transition fired: which process moved, under which rule of the
    /// paper's Tables 1–2 (`C1`–`C3`, `T1`–`T6`, `buf`, `tau`), and the
    /// label kind (`Tau`, `Rendezvous`, `Request`, `Deliver`, `Complete`,
    /// `Nacked`).
    Step {
        /// Step index within the run.
        seq: u64,
        /// Process that moved (`h` or `r<i>`).
        actor: String,
        /// Label kind.
        kind: String,
        /// Rule identifier from the paper's tables.
        rule: String,
        /// Optional user tag (e.g. the workload action name).
        tag: Option<String>,
    },
    /// A wire message was enqueued on a link.
    Send {
        /// Step index within the run.
        seq: u64,
        /// Sending endpoint.
        from: String,
        /// Receiving endpoint.
        to: String,
        /// Wire kind: `Req`, `Ack` or `Nack`.
        wire: String,
        /// Message type name for `Req` wires.
        msg: Option<String>,
        /// Link occupancy immediately after the enqueue, when known.
        occupancy: Option<u32>,
    },
    /// A wire message was consumed from a link.
    Recv {
        /// Step index within the run.
        seq: u64,
        /// Endpoint the message came from.
        from: String,
        /// Endpoint that consumed it.
        to: String,
        /// Wire kind: `Req`, `Ack` or `Nack`.
        wire: String,
        /// Message type name for `Req` wires.
        msg: Option<String>,
    },
    /// A rendezvous completed (async level: request acknowledged; the
    /// abstraction maps this to one atomic rendezvous step).
    Rendezvous {
        /// Step index within the run.
        seq: u64,
        /// The active party whose rendezvous completed.
        actor: String,
        /// Message type of the rendezvous.
        msg: String,
    },
    /// A nack was consumed, so the rejected request will be retried
    /// (the refinement's implicit retransmission loop).
    Retransmit {
        /// Step index within the run.
        seq: u64,
        /// The process that will retry.
        actor: String,
        /// Rule that delivered the nack (`T2` at remotes).
        rule: String,
    },
    /// Home buffer occupancy changed (sampled per step; §3.2's k ≥ 2
    /// bound with reserved progress/ack slots).
    HomeBuffer {
        /// Step index within the run.
        seq: u64,
        /// Entries currently buffered.
        used: u32,
        /// Configured capacity `k`.
        capacity: u32,
    },
    /// Periodic search progress (model checker only; never part of a
    /// deterministic run trace).
    Heartbeat {
        /// States explored so far.
        states: u64,
        /// Current frontier length.
        frontier: u64,
        /// Approximate state-store bytes.
        store_bytes: u64,
        /// Exploration rate since the previous heartbeat.
        states_per_sec: u64,
        /// Wall-clock ms since the search began.
        elapsed_ms: u64,
    },
    /// The fault layer perturbed a link: a message was dropped,
    /// duplicated, reordered, or delivery was delayed for a step.
    FaultInjected {
        /// Step index within the run.
        seq: u64,
        /// Fault kind: `drop`, `dup`, `reorder` or `delay`.
        kind: String,
        /// Sender side of the faulted link.
        from: String,
        /// Receiver side of the faulted link.
        to: String,
        /// Wire kind of the affected message: `Req`, `Ack` or `Nack`.
        wire: String,
        /// Message type name for `Req` wires.
        msg: Option<String>,
    },
    /// A retransmission timer fired for a dropped message: the sender
    /// re-offers the frame (which may itself be lost again).
    RetransmitTimeout {
        /// Step index within the run.
        seq: u64,
        /// Sender side of the recovering link.
        from: String,
        /// Receiver side of the recovering link.
        to: String,
        /// Wire kind of the retransmitted message.
        wire: String,
        /// Message type name for `Req` wires.
        msg: Option<String>,
        /// 1-based retransmission attempt number.
        attempt: u32,
        /// Steps until the next attempt if this one is lost (capped
        /// exponential backoff).
        backoff: u64,
    },
    /// Terminal event: how the run or search ended.
    Outcome {
        /// Outcome name (`Complete`, `Deadlock`, `InvariantViolated`, ...).
        outcome: String,
        /// Violation message or failure detail, when any.
        detail: Option<String>,
        /// Length of the counterexample path that precedes this event,
        /// when one was emitted.
        steps: Option<u64>,
    },
}

impl TraceEvent {
    /// The event's JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        serde::json::to_string(self)
    }
}

/// Where trace events go. Instrumented code guards event construction
/// with [`TraceSink::enabled`], so disabled sinks cost one branch.
pub trait TraceSink {
    /// Whether events should be constructed and emitted at all.
    fn enabled(&self) -> bool {
        true
    }

    /// Record one event.
    fn emit(&mut self, ev: &TraceEvent);

    /// Flush any buffered output.
    fn flush(&mut self) {}
}

/// A sink that drops everything; `enabled()` is `false`, so callers skip
/// event construction entirely and the cost is one predictable branch.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn emit(&mut self, _ev: &TraceEvent) {}
}

/// A bounded in-memory ring keeping the most recent `cap` events — the
/// tail of an execution, which is what a counterexample wants.
#[derive(Debug, Clone)]
pub struct RingSink {
    cap: usize,
    buf: VecDeque<TraceEvent>,
    /// Total events offered, including ones the ring has since dropped.
    seen: u64,
}

impl RingSink {
    /// Ring keeping the last `cap` events (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        RingSink { cap: cap.max(1), buf: VecDeque::new(), seen: 0 }
    }

    /// The retained tail, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events offered to the sink, including dropped ones.
    pub fn total_seen(&self) -> u64 {
        self.seen
    }

    /// Consume the ring, yielding the retained tail oldest first.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.buf.into()
    }
}

impl TraceSink for RingSink {
    fn emit(&mut self, ev: &TraceEvent) {
        self.seen += 1;
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(ev.clone());
    }
}

/// A buffered JSONL writer: one serde-serialized [`TraceEvent`] per line.
///
/// I/O errors are sticky: the first failure disables further writes and
/// is reported by [`JsonlSink::take_error`].
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: BufWriter<W>,
    lines: u64,
    error: Option<io::Error>,
}

impl JsonlSink<File> {
    /// Create (truncating) a JSONL trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink::new(File::create(path)?))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wrap any writer.
    pub fn new(w: W) -> Self {
        JsonlSink { out: BufWriter::new(w), lines: 0, error: None }
    }

    /// Lines successfully written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// The first I/O error, if any occurred.
    pub fn take_error(&mut self) -> Option<io::Error> {
        self.error.take()
    }

    /// Flush and return the underlying writer.
    pub fn into_inner(self) -> io::Result<W> {
        self.out.into_inner().map_err(|e| e.into_error())
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn emit(&mut self, ev: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        let line = ev.to_json();
        if let Err(e) = self.out.write_all(line.as_bytes()).and_then(|()| self.out.write_all(b"\n"))
        {
            self.error = Some(e);
            return;
        }
        self.lines += 1;
    }

    fn flush(&mut self) {
        if let Err(e) = self.out.flush() {
            if self.error.is_none() {
                self.error = Some(e);
            }
        }
    }
}

/// Fans every event out to two sinks — e.g. a JSONL file plus a live
/// progress printer. Enabled when either half is; each half only sees
/// events while it is itself enabled.
#[derive(Debug)]
pub struct TeeSink<A, B>(pub A, pub B);

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    fn enabled(&self) -> bool {
        self.0.enabled() || self.1.enabled()
    }
    fn emit(&mut self, ev: &TraceEvent) {
        if self.0.enabled() {
            self.0.emit(ev);
        }
        if self.1.enabled() {
            self.1.emit(ev);
        }
    }
    fn flush(&mut self) {
        self.0.flush();
        self.1.flush();
    }
}

/// Forwarding impl so `&mut S` is itself a sink (handy for passing a
/// sink down through several layers without giving it up).
impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
    fn emit(&mut self, ev: &TraceEvent) {
        (**self).emit(ev);
    }
    fn flush(&mut self) {
        (**self).flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64) -> TraceEvent {
        TraceEvent::Step {
            seq,
            actor: "h".into(),
            kind: "Tau".into(),
            rule: "tau".into(),
            tag: None,
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.emit(&ev(0));
    }

    #[test]
    fn ring_keeps_the_tail() {
        let mut s = RingSink::new(3);
        for i in 0..10 {
            s.emit(&ev(i));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.total_seen(), 10);
        let seqs: Vec<u64> = s
            .into_events()
            .iter()
            .map(|e| match e {
                TraceEvent::Step { seq, .. } => *seq,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seqs, vec![7, 8, 9]);
    }

    #[test]
    fn jsonl_writes_one_object_per_line() {
        let mut s = JsonlSink::new(Vec::new());
        s.emit(&ev(0));
        s.emit(&TraceEvent::Outcome { outcome: "Complete".into(), detail: None, steps: Some(1) });
        s.flush();
        assert_eq!(s.lines(), 2);
        let bytes = s.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(crate::json_check::is_valid_json(line), "{line}");
        }
    }

    #[test]
    fn event_json_is_externally_tagged() {
        let json = ev(3).to_json();
        assert_eq!(
            json,
            "{\"Step\":{\"seq\":3,\"actor\":\"h\",\"kind\":\"Tau\",\"rule\":\"tau\",\"tag\":null}}"
        );
    }

    #[test]
    fn tee_fans_out_and_respects_per_half_enabledness() {
        let mut tee = TeeSink(RingSink::new(8), NullSink);
        assert!(tee.enabled(), "one enabled half enables the tee");
        tee.emit(&ev(1));
        tee.emit(&ev(2));
        assert_eq!(tee.0.len(), 2);

        let both_off = TeeSink(NullSink, NullSink);
        assert!(!both_off.enabled());

        let mut both_on = TeeSink(RingSink::new(8), RingSink::new(8));
        both_on.emit(&ev(5));
        assert_eq!(both_on.0.len(), 1);
        assert_eq!(both_on.1.len(), 1);
    }
}
