//! Property-based tests for the wire codec: `Wire::decode` must invert
//! `Wire::encode` exactly and must never panic on arbitrary byte soup —
//! it sits on the boundary where bytes from a state store or an external
//! tool re-enter typed code.

use ccr_core::ids::{MsgType, RemoteId};
use ccr_core::value::Value;
use ccr_runtime::wire::Wire;
use ccr_runtime::RuntimeError;
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Unit),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (0u32..64).prop_map(|n| Value::Node(RemoteId(n))),
        any::<u64>().prop_map(Value::Mask),
    ]
}

fn arb_wire() -> impl Strategy<Value = Wire> {
    prop_oneof![
        (0u32..200, proptest::option::of(arb_value()))
            .prop_map(|(m, val)| Wire::Req { msg: MsgType(m), val }),
        Just(Wire::Ack),
        Just(Wire::Nack),
    ]
}

proptest! {
    /// Decode inverts encode, reports the exact consumed length, and is
    /// indifferent to trailing bytes (messages are read from the front of
    /// a concatenated stream).
    #[test]
    fn wire_decode_roundtrips(
        w in arb_wire(),
        suffix in proptest::collection::vec(any::<u8>(), 0..12),
    ) {
        let mut bytes = Vec::new();
        w.encode(&mut bytes);
        let encoded_len = bytes.len();
        bytes.extend_from_slice(&suffix);
        let (decoded, used) = Wire::decode(&bytes).expect("well-formed encoding");
        prop_assert_eq!(decoded, w);
        prop_assert_eq!(used, encoded_len);
    }

    /// Arbitrary bytes either decode to a re-encodable message or fail
    /// with a structured error whose offset lies inside the input — never
    /// a panic, never an out-of-range offset.
    #[test]
    fn wire_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..32)) {
        match Wire::decode(&bytes) {
            Ok((w, used)) => {
                prop_assert!(used <= bytes.len());
                let mut re = Vec::new();
                w.encode(&mut re);
                let (w2, _) = Wire::decode(&re).expect("re-encoded wire decodes");
                prop_assert_eq!(w2, w);
            }
            Err(RuntimeError::Decode { offset, .. }) => {
                prop_assert!(offset <= bytes.len());
            }
            Err(e) => prop_assert!(false, "unexpected error kind: {e}"),
        }
    }

    /// A whole link queue encodes as a parseable stream: length byte, then
    /// back-to-back wire messages.
    #[test]
    fn link_encoding_is_a_parseable_stream(
        wires in proptest::collection::vec(arb_wire(), 0..6),
    ) {
        let mut link = ccr_runtime::wire::Link::new();
        for w in &wires {
            link.push(*w);
        }
        let mut bytes = Vec::new();
        link.encode(&mut bytes);
        prop_assert_eq!(bytes[0] as usize, wires.len());
        let mut at = 1;
        for w in &wires {
            let (decoded, used) = Wire::decode(&bytes[at..]).expect("stream element");
            prop_assert_eq!(&decoded, w);
            at += used;
        }
        prop_assert_eq!(at, bytes.len());
    }
}
