//! Direct tests of the individual rows of the paper's Tables 1 and 2,
//! driven through hand-picked transition sequences of the asynchronous
//! executor. Each test walks the global system to a configuration where
//! exactly the rule under test is enabled and checks its effect.

use ccr_core::builder::ProtocolBuilder;
use ccr_core::expr::Expr;
use ccr_core::ids::{ProcessId, RemoteId};
use ccr_core::process::ProtocolSpec;
use ccr_core::refine::{refine, RefineOptions, RefinedProtocol, ReqRepMode};
use ccr_core::value::Value;
use ccr_runtime::asynch::{AsyncConfig, AsyncState, AsyncSystem, HomePhase, RemotePhase};
use ccr_runtime::system::{Label, TransitionSystem};

/// Token protocol *without* request/reply optimization, so every rendezvous
/// uses the plain request/ack scheme and all table rows are reachable.
fn plain_token() -> RefinedProtocol {
    let mut b = ProtocolBuilder::new("token");
    let req = b.msg("req");
    let gr = b.msg("gr");
    let rel = b.msg("rel");
    let o = b.home_var("o", Value::Node(RemoteId(0)));
    let f = b.home_state("F");
    let g1 = b.home_state("G1");
    let e = b.home_state("E");
    b.home(f).recv_any(req).bind_sender(o).goto(g1);
    b.home(g1).send_to(Expr::Var(o), gr).goto(e);
    b.home(e).recv_exact(rel, Expr::Var(o)).goto(f);
    let i = b.remote_state("I");
    let w = b.remote_state("W");
    let v = b.remote_state("V");
    b.remote(i).send(req).goto(w);
    b.remote(w).recv(gr).goto(v);
    b.remote(v).send(rel).goto(i);
    let spec: ProtocolSpec = b.finish().unwrap();
    refine(&spec, &RefineOptions { reqrep: ReqRepMode::Off }).unwrap()
}

/// Fires the first enabled transition whose label satisfies `pred`,
/// panicking (with the available rules listed) if none does.
fn fire(
    sys: &AsyncSystem<'_>,
    s: &AsyncState,
    pred: impl Fn(&Label) -> bool,
    what: &str,
) -> (Label, AsyncState) {
    let mut succs = Vec::new();
    sys.successors(s, &mut succs).unwrap();
    let available: Vec<String> =
        succs.iter().map(|(l, _)| format!("{}:{}", l.actor, l.rule)).collect();
    succs
        .into_iter()
        .find(|(l, _)| pred(l))
        .unwrap_or_else(|| panic!("no transition for {what}; available: {available:?}"))
}

fn by_rule<'a>(actor: ProcessId, rule: &'a str) -> impl Fn(&Label) -> bool + 'a {
    move |l: &Label| l.actor == actor && l.rule == rule
}

const R0: ProcessId = ProcessId::Remote(RemoteId(0));
const R1: ProcessId = ProcessId::Remote(RemoteId(1));
const H: ProcessId = ProcessId::Home;

#[test]
fn remote_c1_sends_request_and_enters_transient() {
    let refined = plain_token();
    let sys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
    let s0 = sys.initial();
    let (label, s1) = fire(&sys, &s0, by_rule(R0, "C1"), "remote C1");
    assert!(label.emissions().any(|m| m.msg.is_some()));
    assert!(matches!(s1.remotes[0].phase, RemotePhase::Awaiting { .. }));
    assert_eq!(s1.to_home[0].len(), 1);
}

#[test]
fn home_buffers_request_then_c1_acks_it() {
    let refined = plain_token();
    let sys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
    let s0 = sys.initial();
    let (_, s1) = fire(&sys, &s0, by_rule(R0, "C1"), "remote C1");
    // Delivery into the home buffer (T4/T5 depending on occupancy).
    let (label, s2) = fire(
        &sys,
        &s1,
        |l| l.actor == H && l.kind == ccr_runtime::LabelKind::Deliver,
        "home buffering",
    );
    assert!(label.rule == "T4" || label.rule == "T5", "{}", label.rule);
    assert_eq!(s2.home.buf.len(), 1);
    // Home C1: consume + ack.
    let (label, s3) = fire(&sys, &s2, by_rule(H, "C1"), "home C1");
    assert!(label.emissions().any(|m| m.is_ack));
    assert!(label.completes.is_some());
    assert!(s3.home.buf.is_empty());
    assert_eq!(s3.to_remote[0].len(), 1);
    // Remote T1: ack completes the rendezvous.
    let (label, s4) = fire(&sys, &s3, by_rule(R0, "T1"), "remote T1");
    assert!(label.completes.is_some());
    let w = refined.spec.remote.state_by_name("W").unwrap();
    assert_eq!(s4.remotes[0].phase, RemotePhase::At(w));
}

#[test]
fn home_c2_reserves_ack_buffer_and_t6_nacks_overflow() {
    let refined = plain_token();
    // k = 2: after one buffered request and an ack-buffer reservation,
    // nothing else fits.
    let sys = AsyncSystem::new(&refined, 3, AsyncConfig::default());
    let s0 = sys.initial();
    // r0 requests; home consumes via C1 path up to granting (C2 send of gr).
    let (_, s) = fire(&sys, &s0, by_rule(R0, "C1"), "r0 request");
    let (_, s) =
        fire(&sys, &s, |l| l.actor == H && l.kind == ccr_runtime::LabelKind::Deliver, "buffer r0");
    let (_, s) = fire(&sys, &s, by_rule(H, "C1"), "consume req");
    // Home now at G1 whose only branch is the gr send -> C2.
    let (label, s) = fire(&sys, &s, by_rule(H, "C2"), "home C2 sends gr");
    assert!(matches!(s.home.phase, HomePhase::Awaiting { .. }));
    assert!(label.emissions().any(|m| m.msg.is_some()));
    // While awaiting, two competitor requests arrive; k=2 minus the ack
    // reservation leaves only the progress slot, and `gr`-state has no
    // input guards, so both are nacked (T6).
    let (_, s) = fire(&sys, &s, by_rule(R1, "C1"), "r1 requests");
    let (label, s) = fire(&sys, &s, |l| l.actor == H && l.rule == "T6", "nack r1");
    assert!(label.emissions().any(|m| m.is_nack));
    // r1 must retransmit after its nack (T2 then C1 again).
    let (_, s) = fire(&sys, &s, by_rule(R1, "T2"), "r1 gets nack");
    assert!(matches!(s.remotes[1].phase, RemotePhase::At(_)));
    let _ = s;
}

#[test]
fn remote_t3_ignores_home_request_and_home_t3_implicit_nacks() {
    // Use an *optimized* migratory protocol (inlined here since
    // ccr-protocols depends on this crate) to reach the inv/LR crossing:
    // the owner evicts while the home invalidates.
    let refined = {
        let mut b = ProtocolBuilder::new("migratory");
        let req = b.msg("req");
        let gr = b.msg("gr");
        let lr = b.msg("LR");
        let inv = b.msg("inv");
        let id = b.msg("ID");
        let o = b.home_var("o", Value::Node(RemoteId(0)));
        let j = b.home_var("j", Value::Node(RemoteId(0)));
        let f = b.home_state("F");
        let g1 = b.home_state("G1");
        let e = b.home_state("E");
        let i1 = b.home_state("I1");
        let i2 = b.home_state("I2");
        let i3 = b.home_state("I3");
        b.home(f).recv_any(req).bind_sender(j).goto(g1);
        b.home(g1).send_to(Expr::Var(j), gr).assign(o, Expr::Var(j)).goto(e);
        b.home(e).recv_any(req).bind_sender(j).goto(i1);
        b.home(e).recv_exact(lr, Expr::Var(o)).goto(f);
        b.home(i1).send_to(Expr::Var(o), inv).goto(i2);
        b.home(i1).recv_exact(lr, Expr::Var(o)).goto(i3);
        b.home(i2).recv_exact(id, Expr::Var(o)).goto(i3);
        b.home(i2).recv_exact(lr, Expr::Var(o)).goto(i3);
        b.home(i3).send_to(Expr::Var(j), gr).assign(o, Expr::Var(j)).goto(e);
        let rq = b.remote_state("RQ");
        let w = b.remote_state("W");
        let v = b.remote_state("V");
        let ids = b.remote_state("IDS");
        let lrs = b.remote_state("LRS");
        b.remote(rq).send(req).goto(w);
        b.remote(w).recv(gr).goto(v);
        b.remote(v).recv(inv).goto(ids);
        b.remote(v).tau().tag("evict").goto(lrs);
        b.remote(ids).send(id).goto(rq);
        b.remote(lrs).send(lr).goto(rq);
        refine(&b.finish().unwrap(), &RefineOptions::default()).unwrap()
    };
    let sys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
    let s = sys.initial();
    // r0 acquires the line.
    let (_, s) = fire(&sys, &s, by_rule(R0, "C1"), "r0 req");
    let (_, s) = fire(&sys, &s, |l| l.actor == H, "home buffers r0 req");
    let (_, s) = fire(&sys, &s, by_rule(H, "C1"), "home consumes req (noack)");
    let (_, s) = fire(&sys, &s, by_rule(H, "C2/reply"), "home replies gr");
    let (_, s) = fire(&sys, &s, by_rule(R0, "T1/reply"), "r0 gets gr");
    let v = refined.spec.remote.state_by_name("V").unwrap();
    assert_eq!(s.remotes[0].phase, RemotePhase::At(v));
    // r1 wants the line; home starts revoking r0.
    let (_, s) = fire(&sys, &s, by_rule(R1, "C1"), "r1 req");
    let (_, s) =
        fire(&sys, &s, |l| l.actor == H && l.kind == ccr_runtime::LabelKind::Deliver, "buffer r1");
    let (_, s) = fire(&sys, &s, by_rule(H, "C1"), "consume r1 req");
    let (_, s) = fire(&sys, &s, by_rule(H, "C2"), "home sends inv to r0");
    assert!(matches!(s.home.phase, HomePhase::Awaiting { .. }));
    // Concurrently r0 evicts: tau to LRS, then sends LR (deleting the
    // buffered inv per remote C2) and awaits its ack.
    let (_, s) =
        fire(&sys, &s, |l| l.actor == R0 && l.tag.as_deref() == Some("evict"), "r0 evicts");
    let (label, s) = fire(
        &sys,
        &s,
        |l| l.actor == R0 && l.kind == ccr_runtime::LabelKind::Request,
        "r0 sends LR",
    );
    // The rule is C1 or C2 depending on whether inv was already delivered
    // into r0's buffer; both are legal.
    assert!(label.rule == "C1" || label.rule == "C2", "{}", label.rule);
    // If the inv is still in flight toward r0, deliver it: remote T3
    // ignores it.
    if !s.to_remote[0].is_empty() {
        let (label, s2) = fire(&sys, &s, |l| l.actor == R0 && l.rule == "T3", "r0 ignores inv");
        assert_eq!(label.kind, ccr_runtime::LabelKind::Deliver);
        // Home then receives LR as an implicit nack (T3) and buffers it.
        let (_, s3) = fire(&sys, &s2, by_rule(H, "T3"), "home implicit nack");
        assert!(matches!(s3.home.phase, HomePhase::At(_)));
        assert!(s3.home.buf.iter().any(|e| e.from == RemoteId(0)));
        // From the communication state, C1 consumes the LR and acks it.
        let (label, _) = fire(&sys, &s3, by_rule(H, "C1"), "home consumes LR");
        assert!(label.emissions().any(|m| m.is_ack));
    }
}

#[test]
fn t5_progress_buffer_admits_only_satisfying_requests() {
    let refined = plain_token();
    let sys = AsyncSystem::new(&refined, 3, AsyncConfig::default());
    // Drive: r0 granted (home at E, owner r0); r1 and r2 both request.
    let s = sys.initial();
    let (_, s) = fire(&sys, &s, by_rule(R0, "C1"), "r0 req");
    let (_, s) = fire(&sys, &s, |l| l.actor == H, "buffer r0");
    let (_, s) = fire(&sys, &s, by_rule(H, "C1"), "consume r0 req");
    let (_, s) = fire(&sys, &s, by_rule(H, "C2"), "send gr");
    let (_, s) = fire(&sys, &s, by_rule(R0, "T1"), "r0 sees req ack");
    let (_, s) = fire(&sys, &s, by_rule(R0, "buf"), "r0 buffers gr");
    let (_, s) = fire(&sys, &s, by_rule(R0, "C3"), "r0 accepts gr");
    let (_, s) = fire(&sys, &s, by_rule(H, "T1"), "home sees gr ack");
    // Home at E. Its guards accept only rel from r0. A req from r1 is
    // buffered while free >= 2...
    let (_, s) = fire(&sys, &s, by_rule(R1, "C1"), "r1 req");
    let (label, s) =
        fire(&sys, &s, |l| l.actor == H && l.kind == ccr_runtime::LabelKind::Deliver, "admit r1");
    assert_eq!(label.rule, "T4");
    // ...but with one slot left (the progress buffer) a second req that
    // satisfies no guard at E is nacked (T6), while r0's rel (which does
    // satisfy E) is admitted via T5.
    let (_, s) =
        fire(&sys, &s, |l| l.actor == ProcessId::Remote(RemoteId(2)) && l.rule == "C1", "r2 req");
    let (label, s) =
        fire(&sys, &s, |l| l.actor == H && (l.rule == "T6" || l.rule == "T5"), "r2 admission");
    assert_eq!(label.rule, "T6", "non-satisfying request must be nacked from the progress slot");
    let (_, s) = fire(&sys, &s, by_rule(R0, "C1"), "r0 releases");
    let (label, _) =
        fire(&sys, &s, |l| l.actor == H && l.kind == ccr_runtime::LabelKind::Deliver, "admit rel");
    assert_eq!(label.rule, "T5", "the satisfying rel takes the progress buffer");
}

#[test]
fn cursor_cycles_output_guards_after_nack() {
    // A home with two output guards to different remotes; the first target
    // ignores requests forever (it is itself awaiting), so the home must
    // cycle to the second guard after the implicit nack.
    let mut b = ProtocolBuilder::new("cycle");
    let ping0 = b.msg("p0");
    let ping1 = b.msg("p1");
    let hello = b.msg("hello");
    let h0 = b.home_state("H0");
    let h1 = b.home_state("H1");
    b.home(h0).send_to(Expr::node(RemoteId(0)), ping0).goto(h1);
    b.home(h0).send_to(Expr::node(RemoteId(1)), ping1).goto(h1);
    b.home(h1).recv_any(hello).goto(h1);
    let r = b.remote_state("R");
    let r2 = b.remote_state("R2");
    b.remote(r).recv(ping0).goto(r2);
    b.remote(r).recv(ping1).goto(r2);
    b.remote(r).tau().tag("go").goto(r2);
    b.remote(r2).send(hello).goto(r2);
    let spec = b.finish().unwrap();
    let refined = refine(&spec, &RefineOptions { reqrep: ReqRepMode::Off }).unwrap();
    let sys = AsyncSystem::new(&refined, 2, AsyncConfig::default());

    let s = sys.initial();
    // Home C2 picks guard 0 (cursor starts at 0) -> requests p0 from r0.
    let (label, s) = fire(&sys, &s, by_rule(H, "C2"), "first C2");
    assert_eq!(label.emissions().next().unwrap().to, ProcessId::Remote(RemoteId(0)));
    match s.home.phase {
        HomePhase::Awaiting { branch, target, .. } => {
            assert_eq!(branch, 0);
            assert_eq!(target, RemoteId(0));
        }
        _ => panic!("should await"),
    }
    // r0 autonomously moves to R2 and sends hello — crossing the ping.
    let (_, s) = fire(&sys, &s, |l| l.actor == R0 && l.tag.as_deref() == Some("go"), "r0 go");
    let (_, s) =
        fire(&sys, &s, |l| l.actor == R0 && l.kind == ccr_runtime::LabelKind::Request, "r0 hello");
    // Home receives hello from r0 = implicit nack; cursor moves past 0.
    let (_, s) = fire(&sys, &s, by_rule(H, "T3"), "implicit nack");
    assert_eq!(s.home.cursor, 1);
    // Next C2 must try guard 1 (target r1), not retry guard 0.
    let (label, _) = fire(&sys, &s, by_rule(H, "C2"), "second C2");
    assert_eq!(label.emissions().next().unwrap().to, ProcessId::Remote(RemoteId(1)));
}
