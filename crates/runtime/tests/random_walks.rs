//! Property-based random walks through the asynchronous semantics at
//! configurations too large for exhaustive checking: every visited state
//! must abstract cleanly (the §4 function is total on reachable states),
//! every step must satisfy Equation 1 locally, and the executor must never
//! report a runtime error.

use ccr_core::refine::{refine, RefineOptions, ReqRepMode};
use ccr_runtime::abstraction::abs;
use ccr_runtime::asynch::{AsyncConfig, AsyncSystem};
use ccr_runtime::rendezvous::RendezvousSystem;
use ccr_runtime::TransitionSystem;
use proptest::prelude::*;

mod common {
    use ccr_core::builder::ProtocolBuilder;
    use ccr_core::expr::Expr;
    use ccr_core::ids::RemoteId;
    use ccr_core::process::ProtocolSpec;
    use ccr_core::value::Value;

    /// A compact migratory-like protocol (token with revocation) that
    /// exercises both request/reply forms.
    pub fn mini_migratory() -> ProtocolSpec {
        let mut b = ProtocolBuilder::new("mini");
        let req = b.msg("req");
        let gr = b.msg("gr");
        let inv = b.msg("inv");
        let done = b.msg("done");
        let o = b.home_var("o", Value::Node(RemoteId(0)));
        let j = b.home_var("j", Value::Node(RemoteId(0)));
        let f = b.home_state("F");
        let g1 = b.home_state("G1");
        let e = b.home_state("E");
        let rv = b.home_state("RV");
        let rv2 = b.home_state("RV2");
        b.home(f).recv_any(req).bind_sender(j).goto(g1);
        b.home(g1).send_to(Expr::Var(j), gr).assign(o, Expr::Var(j)).goto(e);
        b.home(e).recv_any(req).bind_sender(j).goto(rv);
        b.home(rv).send_to(Expr::Var(o), inv).goto(rv2);
        b.home(rv2).recv_exact(done, Expr::Var(o)).goto(g1);
        let rq = b.remote_state("RQ");
        let w = b.remote_state("W");
        let v = b.remote_state("V");
        let d = b.remote_state("D");
        b.remote(rq).send(req).goto(w);
        b.remote(w).recv(gr).goto(v);
        b.remote(v).recv(inv).goto(d);
        b.remote(d).send(done).goto(rq);
        b.finish().unwrap()
    }
}

fn walk_checks(seed: u64, n: u32, steps: usize, mode: ReqRepMode, k: usize) {
    let spec = common::mini_migratory();
    let refined = refine(&spec, &RefineOptions { reqrep: mode }).unwrap();
    let rv = RendezvousSystem::new(&spec, n);
    let asys = AsyncSystem::new(&refined, n, AsyncConfig::with_home_buffer(k));
    let mut state = asys.initial();
    let mut succs = Vec::new();
    let mut rv_succs = Vec::new();
    let mut x = seed | 1;
    for step in 0..steps {
        let a = abs(&asys, &state).unwrap_or_else(|e| panic!("abs failed at step {step}: {e}"));
        let a_enc = rv.encoded(&a);
        asys.successors(&state, &mut succs)
            .unwrap_or_else(|e| panic!("executor error at step {step}: {e}"));
        assert!(!succs.is_empty(), "asynchronous deadlock at step {step}");
        // xorshift for reproducible pseudo-random choice
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let (label, next) = succs.swap_remove((x as usize) % succs.len());
        let a2 = abs(&asys, &next)
            .unwrap_or_else(|e| panic!("abs failed after {} at step {step}: {e}", label.rule));
        let a2_enc = rv.encoded(&a2);
        if a_enc != a2_enc {
            rv.successors(&a, &mut rv_succs).unwrap();
            let ok = rv_succs.iter().any(|(_, s)| rv.encoded(s) == a2_enc);
            assert!(ok, "Equation 1 violated by rule {} at step {step}", label.rule);
        }
        state = next;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Equation 1 holds along random walks at n=4 (beyond exhaustive
    /// checking), optimized refinement, minimal buffer.
    #[test]
    fn equation_one_on_walks_optimized(seed in any::<u64>()) {
        walk_checks(seed, 4, 400, ReqRepMode::Auto, 2);
    }

    /// Same without the request/reply optimization.
    #[test]
    fn equation_one_on_walks_unoptimized(seed in any::<u64>()) {
        walk_checks(seed, 3, 300, ReqRepMode::Off, 2);
    }

    /// Same with a larger home buffer.
    #[test]
    fn equation_one_on_walks_large_buffer(seed in any::<u64>()) {
        walk_checks(seed, 4, 300, ReqRepMode::Auto, 5);
    }
}

#[test]
fn walks_are_deterministic_given_seed() {
    // The walk itself is a deterministic function of the seed — rerunning
    // must traverse identical states (guards the executor against hidden
    // nondeterminism such as hash-map iteration order).
    let spec = common::mini_migratory();
    let refined = refine(&spec, &RefineOptions::default()).unwrap();
    let asys = AsyncSystem::new(&refined, 3, AsyncConfig::default());
    let run = |seed: u64| -> Vec<Vec<u8>> {
        let mut state = asys.initial();
        let mut succs = Vec::new();
        let mut out = Vec::new();
        let mut x = seed | 1;
        for _ in 0..200 {
            asys.successors(&state, &mut succs).unwrap();
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let (_, next) = succs.swap_remove((x as usize) % succs.len());
            out.push(asys.encoded(&next));
            state = next;
        }
        out
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8));
}
