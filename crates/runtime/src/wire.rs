//! Wire messages and the reliable in-order point-to-point network.
//!
//! The paper's communication model (§2.2): the network delivers messages
//! reliably and in order between each pair of nodes. The paper assumes
//! infinite buffering; for explicit-state model checking we bound each link
//! and *check* (rather than assume) that the bound is never exceeded — an
//! overflow surfaces as [`crate::RuntimeError::LinkOverflow`].

use ccr_core::ids::MsgType;
use ccr_core::ids::{ProcessId, RemoteId};
use ccr_core::value::Value;
use serde::{Serialize, Serializer};
use std::collections::VecDeque;

/// A message on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Wire {
    /// A request for rendezvous carrying the message type and payload.
    /// Optimized replies (`gr`, `ID`) also travel as `Req`s — their special
    /// status is a property of the receiver's state, not of the wire format.
    Req {
        /// The message type requested.
        msg: MsgType,
        /// Payload, if the rendezvous carries one.
        val: Option<Value>,
    },
    /// Positive acknowledgment: the rendezvous completed.
    Ack,
    /// Negative acknowledgment: the rendezvous failed; retransmit.
    Nack,
}

impl Wire {
    /// True for `Req`.
    pub fn is_req(&self) -> bool {
        matches!(self, Wire::Req { .. })
    }

    /// The request's message type, if a request.
    pub fn req_msg(&self) -> Option<MsgType> {
        match self {
            Wire::Req { msg, .. } => Some(*msg),
            _ => None,
        }
    }

    /// Compact byte encoding for the state store.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Wire::Req { msg, val } => {
                out.push(1);
                out.push(msg.0 as u8);
                match val {
                    Some(v) => {
                        out.push(1);
                        v.encode(out);
                    }
                    None => out.push(0),
                }
            }
            Wire::Ack => out.push(2),
            Wire::Nack => out.push(3),
        }
    }

    /// Upper bound on the encoded size of any wire message: a `Req` with
    /// a payload takes tag + msg + flag + one value.
    pub const MAX_ENCODED_LEN: usize = 3 + Value::MAX_ENCODED_LEN;

    /// Fast-path encoding into a preallocated slot: same bytes as
    /// [`Wire::encode`] at `buf[pos..]`, returning the new cursor. The
    /// caller guarantees `buf.len() - pos >= MAX_ENCODED_LEN`.
    #[inline]
    pub fn encode_into(&self, buf: &mut [u8], pos: usize) -> usize {
        match self {
            Wire::Req { msg, val } => {
                buf[pos] = 1;
                buf[pos + 1] = msg.0 as u8;
                match val {
                    Some(v) => {
                        buf[pos + 2] = 1;
                        v.encode_into(buf, pos + 3)
                    }
                    None => {
                        buf[pos + 2] = 0;
                        pos + 3
                    }
                }
            }
            Wire::Ack => {
                buf[pos] = 2;
                pos + 1
            }
            Wire::Nack => {
                buf[pos] = 3;
                pos + 1
            }
        }
    }

    /// Inverse of [`Wire::encode`]: reads one message from the front of
    /// `bytes`, returning it and the number of bytes consumed.
    ///
    /// Truncated or corrupt input is a structured
    /// [`RuntimeError::Decode`](crate::RuntimeError::Decode), never a
    /// panic — decode sits on the boundary where bytes from a state store
    /// or an external tool re-enter typed code.
    pub fn decode(bytes: &[u8]) -> crate::Result<(Wire, usize)> {
        use crate::RuntimeError::Decode;
        let tag = *bytes.first().ok_or(Decode { detail: "empty input", offset: 0 })?;
        match tag {
            1 => {
                let msg =
                    *bytes.get(1).ok_or(Decode { detail: "missing message type", offset: 1 })?;
                let flag =
                    *bytes.get(2).ok_or(Decode { detail: "missing payload flag", offset: 2 })?;
                match flag {
                    0 => Ok((Wire::Req { msg: MsgType(msg as u32), val: None }, 3)),
                    1 => {
                        let (val, used) = Value::decode(&bytes[3..])
                            .ok_or(Decode { detail: "bad payload value", offset: 3 })?;
                        Ok((Wire::Req { msg: MsgType(msg as u32), val: Some(val) }, 3 + used))
                    }
                    _ => Err(Decode { detail: "bad payload flag", offset: 2 }),
                }
            }
            2 => Ok((Wire::Ack, 1)),
            3 => Ok((Wire::Nack, 1)),
            _ => Err(Decode { detail: "unknown wire tag", offset: 0 }),
        }
    }

    /// Short wire-format name for trace events: `"Req"`, `"Ack"` or
    /// `"Nack"`.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Wire::Req { .. } => "Req",
            Wire::Ack => "Ack",
            Wire::Nack => "Nack",
        }
    }
}

/// One direction of a point-to-point link: a bounded FIFO queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Link {
    queue: VecDeque<Wire>,
}

impl Link {
    /// Creates an empty link.
    pub fn new() -> Self {
        Self { queue: VecDeque::new() }
    }

    /// Appends a message; the caller enforces the capacity bound.
    pub fn push(&mut self, w: Wire) {
        self.queue.push_back(w);
    }

    /// Removes and returns the head message.
    pub fn pop(&mut self) -> Option<Wire> {
        self.queue.pop_front()
    }

    /// Peeks at the head message.
    pub fn head(&self) -> Option<&Wire> {
        self.queue.front()
    }

    /// Queue length.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if no messages are in flight.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Iterates over in-flight messages in delivery order.
    pub fn iter(&self) -> impl Iterator<Item = &Wire> {
        self.queue.iter()
    }

    /// Whether any in-flight message satisfies `pred`.
    pub fn any(&self, pred: impl FnMut(&Wire) -> bool) -> bool {
        self.queue.iter().any(pred)
    }

    /// The message at queue position `i` (0 = head), if in range.
    pub fn get(&self, i: usize) -> Option<&Wire> {
        self.queue.get(i)
    }

    /// Inserts a message at queue position `i ≤ len`, shifting later
    /// messages back. Used by the fault layer to resequence a recovered
    /// message into its original FIFO position.
    pub fn insert(&mut self, i: usize, w: Wire) {
        self.queue.insert(i, w);
    }

    /// Removes and returns the message at queue position `i`, if in range.
    /// Used by the fault layer to drop an in-flight message.
    pub fn remove_at(&mut self, i: usize) -> Option<Wire> {
        self.queue.remove(i)
    }

    /// Swaps the messages at positions `i` and `j` (a reorder fault).
    pub fn swap(&mut self, i: usize, j: usize) {
        self.queue.swap(i, j);
    }

    /// Compact byte encoding for the state store.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.queue.len() as u8);
        for w in &self.queue {
            w.encode(out);
        }
    }

    /// Upper bound on the encoded size of a link that never exceeds
    /// `capacity` in-flight messages (the checker errors with
    /// [`crate::RuntimeError::LinkOverflow`] before a fuller link is
    /// ever encoded).
    pub const fn max_encoded_len(capacity: usize) -> usize {
        1 + capacity * Wire::MAX_ENCODED_LEN
    }

    /// Fast-path encoding into a preallocated slot: same bytes as
    /// [`Link::encode`] at `buf[pos..]`, returning the new cursor. The
    /// caller guarantees room for [`Link::max_encoded_len`] of the
    /// link's capacity bound.
    #[inline]
    pub fn encode_into(&self, buf: &mut [u8], pos: usize) -> usize {
        buf[pos] = self.queue.len() as u8;
        let mut pos = pos + 1;
        for w in &self.queue {
            pos = w.encode_into(buf, pos);
        }
        pos
    }

    /// Inverse of [`Link::encode`]: reads one link from the front of
    /// `bytes`, returning it and the number of bytes consumed. Truncated
    /// or corrupt input is a structured error, never a panic.
    pub fn decode(bytes: &[u8]) -> crate::Result<(Link, usize)> {
        use crate::RuntimeError::Decode;
        let len = *bytes.first().ok_or(Decode { detail: "missing link length", offset: 0 })?;
        let mut queue = VecDeque::with_capacity(len as usize);
        let mut off = 1;
        for _ in 0..len {
            let rest = bytes.get(off..).ok_or(Decode { detail: "truncated link", offset: off })?;
            let (w, used) = Wire::decode(rest)?;
            queue.push_back(w);
            off += used;
        }
        Ok((Link { queue }, off))
    }
}

impl Default for Link {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-link occupancy high-water bookkeeping for the star topology.
///
/// The paper *assumes* infinitely buffered links; the executor bounds them
/// and checks the bound. `Network` records the highest occupancy each
/// directed link ever reached during a run, making the margin of the
/// [`crate::RuntimeError::LinkOverflow`] assumption observable instead of
/// binary (overflowed / didn't).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Network {
    /// High-water marks of the `remote i → home` links, indexed by `i`.
    to_home: Vec<u32>,
    /// High-water marks of the `home → remote i` links, indexed by `i`.
    to_remote: Vec<u32>,
}

impl Network {
    /// Empty bookkeeper; links are discovered lazily as they are observed.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(side: &mut Vec<u32>, i: usize) -> &mut u32 {
        if side.len() <= i {
            side.resize(i + 1, 0);
        }
        &mut side[i]
    }

    /// Records an observed occupancy of the directed link `from → to`.
    /// Links between two remotes do not exist in the star topology and are
    /// ignored.
    pub fn observe(&mut self, from: ProcessId, to: ProcessId, occupancy: u32) {
        let slot = match (from, to) {
            (ProcessId::Remote(r), ProcessId::Home) => Self::slot(&mut self.to_home, r.index()),
            (ProcessId::Home, ProcessId::Remote(r)) => Self::slot(&mut self.to_remote, r.index()),
            _ => return,
        };
        *slot = (*slot).max(occupancy);
    }

    /// The recorded high-water mark for `from → to` (0 if never observed).
    pub fn high_water(&self, from: ProcessId, to: ProcessId) -> u32 {
        match (from, to) {
            (ProcessId::Remote(r), ProcessId::Home) => {
                self.to_home.get(r.index()).copied().unwrap_or(0)
            }
            (ProcessId::Home, ProcessId::Remote(r)) => {
                self.to_remote.get(r.index()).copied().unwrap_or(0)
            }
            _ => 0,
        }
    }

    /// The maximum high-water mark over all links.
    pub fn max_high_water(&self) -> u32 {
        self.to_home.iter().chain(self.to_remote.iter()).copied().max().unwrap_or(0)
    }

    /// Iterates over `(from, to, high_water)` for every observed link.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, ProcessId, u32)> + '_ {
        let up = self
            .to_home
            .iter()
            .enumerate()
            .map(|(i, &hw)| (ProcessId::Remote(RemoteId(i as u32)), ProcessId::Home, hw));
        let down = self
            .to_remote
            .iter()
            .enumerate()
            .map(|(i, &hw)| (ProcessId::Home, ProcessId::Remote(RemoteId(i as u32)), hw));
        up.chain(down)
    }

    /// True when no link was ever observed.
    pub fn is_empty(&self) -> bool {
        self.to_home.is_empty() && self.to_remote.is_empty()
    }
}

/// Serializes as a flat object keyed by `"from->to"`, e.g.
/// `{"h->r0":2,"r0->h":1}`.
impl Serialize for Network {
    fn serialize(&self, s: &mut Serializer) {
        let mut entries: Vec<(String, u32)> =
            self.iter().map(|(from, to, hw)| (format!("{from}->{to}"), hw)).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut m = s.begin_map();
        for (k, hw) in &entries {
            m.entry(k, hw);
        }
        m.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_is_fifo() {
        let mut l = Link::new();
        assert!(l.is_empty());
        l.push(Wire::Ack);
        l.push(Wire::Nack);
        assert_eq!(l.len(), 2);
        assert_eq!(l.head(), Some(&Wire::Ack));
        assert_eq!(l.pop(), Some(Wire::Ack));
        assert_eq!(l.pop(), Some(Wire::Nack));
        assert_eq!(l.pop(), None);
    }

    #[test]
    fn wire_helpers() {
        let r = Wire::Req { msg: MsgType(3), val: Some(Value::Int(1)) };
        assert!(r.is_req());
        assert_eq!(r.req_msg(), Some(MsgType(3)));
        assert!(!Wire::Ack.is_req());
        assert_eq!(Wire::Nack.req_msg(), None);
    }

    #[test]
    fn encodings_distinguish_messages() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        Wire::Req { msg: MsgType(0), val: None }.encode(&mut a);
        Wire::Req { msg: MsgType(1), val: None }.encode(&mut b);
        assert_ne!(a, b);
        a.clear();
        Wire::Ack.encode(&mut a);
        b.clear();
        Wire::Nack.encode(&mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn network_high_water_tracks_maxima() {
        let r0 = ProcessId::Remote(RemoteId(0));
        let r2 = ProcessId::Remote(RemoteId(2));
        let h = ProcessId::Home;
        let mut net = Network::new();
        assert!(net.is_empty());
        net.observe(r0, h, 1);
        net.observe(r0, h, 3);
        net.observe(r0, h, 2);
        net.observe(h, r2, 4);
        net.observe(r0, r2, 99); // no remote-remote links in the star
        assert_eq!(net.high_water(r0, h), 3);
        assert_eq!(net.high_water(h, r2), 4);
        assert_eq!(net.high_water(h, r0), 0);
        assert_eq!(net.max_high_water(), 4);
        assert_eq!(net.iter().count(), 4, "r0..r2 downlinks materialized");
    }

    #[test]
    fn network_serializes_as_sorted_link_map() {
        let mut net = Network::new();
        net.observe(ProcessId::Remote(RemoteId(0)), ProcessId::Home, 2);
        net.observe(ProcessId::Home, ProcessId::Remote(RemoteId(0)), 1);
        assert_eq!(serde::json::to_string(&net), "{\"h->r0\":1,\"r0->h\":2}");
    }

    #[test]
    fn wire_decode_roundtrips_and_reports_offsets() {
        let wires = [
            Wire::Req { msg: MsgType(3), val: Some(Value::Int(1)) },
            Wire::Req { msg: MsgType(0), val: Some(Value::Node(RemoteId(2))) },
            Wire::Req { msg: MsgType(7), val: None },
            Wire::Ack,
            Wire::Nack,
        ];
        for w in wires {
            let mut buf = Vec::new();
            w.encode(&mut buf);
            assert_eq!(Wire::decode(&buf).unwrap(), (w, buf.len()));
        }
        // Truncations and corruptions are structured errors, not panics.
        assert!(matches!(Wire::decode(&[]), Err(crate::RuntimeError::Decode { offset: 0, .. })));
        assert!(matches!(
            Wire::decode(&[1, 3]),
            Err(crate::RuntimeError::Decode { offset: 2, .. })
        ));
        assert!(matches!(
            Wire::decode(&[1, 3, 9]),
            Err(crate::RuntimeError::Decode { offset: 2, .. })
        ));
        assert!(matches!(
            Wire::decode(&[1, 3, 1, 255]),
            Err(crate::RuntimeError::Decode { offset: 3, .. })
        ));
        assert!(Wire::decode(&[99]).is_err());
    }

    #[test]
    fn link_positional_ops() {
        let mut l = Link::new();
        l.push(Wire::Ack);
        l.push(Wire::Nack);
        l.insert(1, Wire::Req { msg: MsgType(1), val: None });
        assert_eq!(l.get(1).unwrap().req_msg(), Some(MsgType(1)));
        l.swap(0, 2);
        assert_eq!(l.head(), Some(&Wire::Nack));
        assert_eq!(l.remove_at(1), Some(Wire::Req { msg: MsgType(1), val: None }));
        assert_eq!(l.remove_at(5), None);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn link_any_and_iter() {
        let mut l = Link::new();
        l.push(Wire::Req { msg: MsgType(5), val: None });
        l.push(Wire::Ack);
        assert!(l.any(|w| w.req_msg() == Some(MsgType(5))));
        assert!(!l.any(|w| w.req_msg() == Some(MsgType(6))));
        assert_eq!(l.iter().count(), 2);
    }
}
