//! Wire messages and the reliable in-order point-to-point network.
//!
//! The paper's communication model (§2.2): the network delivers messages
//! reliably and in order between each pair of nodes. The paper assumes
//! infinite buffering; for explicit-state model checking we bound each link
//! and *check* (rather than assume) that the bound is never exceeded — an
//! overflow surfaces as [`crate::RuntimeError::LinkOverflow`].

use ccr_core::ids::MsgType;
use ccr_core::value::Value;
use std::collections::VecDeque;

/// A message on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Wire {
    /// A request for rendezvous carrying the message type and payload.
    /// Optimized replies (`gr`, `ID`) also travel as `Req`s — their special
    /// status is a property of the receiver's state, not of the wire format.
    Req {
        /// The message type requested.
        msg: MsgType,
        /// Payload, if the rendezvous carries one.
        val: Option<Value>,
    },
    /// Positive acknowledgment: the rendezvous completed.
    Ack,
    /// Negative acknowledgment: the rendezvous failed; retransmit.
    Nack,
}

impl Wire {
    /// True for `Req`.
    pub fn is_req(&self) -> bool {
        matches!(self, Wire::Req { .. })
    }

    /// The request's message type, if a request.
    pub fn req_msg(&self) -> Option<MsgType> {
        match self {
            Wire::Req { msg, .. } => Some(*msg),
            _ => None,
        }
    }

    /// Compact byte encoding for the state store.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Wire::Req { msg, val } => {
                out.push(1);
                out.push(msg.0 as u8);
                match val {
                    Some(v) => {
                        out.push(1);
                        v.encode(out);
                    }
                    None => out.push(0),
                }
            }
            Wire::Ack => out.push(2),
            Wire::Nack => out.push(3),
        }
    }
}

/// One direction of a point-to-point link: a bounded FIFO queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Link {
    queue: VecDeque<Wire>,
}

impl Link {
    /// Creates an empty link.
    pub fn new() -> Self {
        Self { queue: VecDeque::new() }
    }

    /// Appends a message; the caller enforces the capacity bound.
    pub fn push(&mut self, w: Wire) {
        self.queue.push_back(w);
    }

    /// Removes and returns the head message.
    pub fn pop(&mut self) -> Option<Wire> {
        self.queue.pop_front()
    }

    /// Peeks at the head message.
    pub fn head(&self) -> Option<&Wire> {
        self.queue.front()
    }

    /// Queue length.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if no messages are in flight.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Iterates over in-flight messages in delivery order.
    pub fn iter(&self) -> impl Iterator<Item = &Wire> {
        self.queue.iter()
    }

    /// Whether any in-flight message satisfies `pred`.
    pub fn any(&self, pred: impl FnMut(&Wire) -> bool) -> bool {
        self.queue.iter().any(pred)
    }

    /// Compact byte encoding for the state store.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.queue.len() as u8);
        for w in &self.queue {
            w.encode(out);
        }
    }
}

impl Default for Link {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_is_fifo() {
        let mut l = Link::new();
        assert!(l.is_empty());
        l.push(Wire::Ack);
        l.push(Wire::Nack);
        assert_eq!(l.len(), 2);
        assert_eq!(l.head(), Some(&Wire::Ack));
        assert_eq!(l.pop(), Some(Wire::Ack));
        assert_eq!(l.pop(), Some(Wire::Nack));
        assert_eq!(l.pop(), None);
    }

    #[test]
    fn wire_helpers() {
        let r = Wire::Req { msg: MsgType(3), val: Some(Value::Int(1)) };
        assert!(r.is_req());
        assert_eq!(r.req_msg(), Some(MsgType(3)));
        assert!(!Wire::Ack.is_req());
        assert_eq!(Wire::Nack.req_msg(), None);
    }

    #[test]
    fn encodings_distinguish_messages() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        Wire::Req { msg: MsgType(0), val: None }.encode(&mut a);
        Wire::Req { msg: MsgType(1), val: None }.encode(&mut b);
        assert_ne!(a, b);
        a.clear();
        Wire::Ack.encode(&mut a);
        b.clear();
        Wire::Nack.encode(&mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn link_any_and_iter() {
        let mut l = Link::new();
        l.push(Wire::Req { msg: MsgType(5), val: None });
        l.push(Wire::Ack);
        assert!(l.any(|w| w.req_msg() == Some(MsgType(5))));
        assert!(!l.any(|w| w.req_msg() == Some(MsgType(6))));
        assert_eq!(l.iter().count(), 2);
    }
}
