//! The `TransitionSystem` abstraction shared by both semantic levels.
//!
//! The model checker, the simulators and the abstraction checker all
//! consume protocols through this trait, so every analysis works uniformly
//! on the rendezvous and the asynchronous semantics.

use crate::error::Result;
use ccr_core::ids::{MsgType, ProcessId};
use serde::Serialize;

/// Classification of a global transition, used for reporting and for the
/// progress checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum LabelKind {
    /// An autonomous local step (`tau`, including internal states).
    Tau,
    /// A rendezvous completed atomically (rendezvous semantics only).
    Rendezvous,
    /// A process issued a request for rendezvous.
    Request,
    /// Delivery of a wire message was processed.
    Deliver,
    /// A passive party completed a rendezvous (sent an ack or consumed an
    /// optimized request).
    Complete,
    /// A request was nacked.
    Nacked,
    /// The fault layer perturbed the network (model-checking fault-closure
    /// transitions: drop, duplicate, retransmit).
    Fault,
}

/// A wire message emitted during a step, for message accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SentMsg {
    /// Sender.
    pub from: ProcessId,
    /// Receiver.
    pub to: ProcessId,
    /// `Some(m)` for requests (including optimized replies); `None` for
    /// acks/nacks.
    pub msg: Option<MsgType>,
    /// True for nacks.
    pub is_nack: bool,
    /// True for acks.
    pub is_ack: bool,
}

impl SentMsg {
    /// A request (or optimized reply) message record.
    pub fn req(from: ProcessId, to: ProcessId, msg: MsgType) -> Self {
        Self { from, to, msg: Some(msg), is_nack: false, is_ack: false }
    }

    /// An ack record.
    pub fn ack(from: ProcessId, to: ProcessId) -> Self {
        Self { from, to, msg: None, is_nack: false, is_ack: true }
    }

    /// A nack record.
    pub fn nack(from: ProcessId, to: ProcessId) -> Self {
        Self { from, to, msg: None, is_nack: true, is_ack: false }
    }

    /// The wire kind as a short name: `"Req"`, `"Ack"` or `"Nack"`.
    pub fn wire_kind(&self) -> &'static str {
        if self.is_ack {
            "Ack"
        } else if self.is_nack {
            "Nack"
        } else {
            "Req"
        }
    }
}

/// Label attached to each generated transition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Label {
    /// The process that took the step.
    pub actor: ProcessId,
    /// Classification.
    pub kind: LabelKind,
    /// Short rule name from the paper's tables (e.g. `"C1"`, `"T3"`,
    /// `"rendezvous"`), for traces and debugging.
    pub rule: &'static str,
    /// `Some((active, msg))` when this step *completes* a rendezvous —
    /// the progress events of §2.5. `active` is the requesting party.
    pub completes: Option<(ProcessId, MsgType)>,
    /// Wire messages emitted during the step (at most two: a nack to free a
    /// buffer slot plus the new request, per Table 2 row C2).
    pub sent: [Option<SentMsg>; 2],
    /// The wire message this step *consumed* from a link, if it was a
    /// delivery step (Table 1–2 rows T1–T6 and `buf`).
    pub recv: Option<SentMsg>,
    /// The tag of the branch that fired, if any (e.g. `"evict"`).
    pub tag: Option<String>,
}

impl Label {
    /// A label with no emissions.
    pub fn new(actor: ProcessId, kind: LabelKind, rule: &'static str) -> Self {
        Self { actor, kind, rule, completes: None, sent: [None, None], recv: None, tag: None }
    }

    /// Attaches a completion event.
    pub fn completing(mut self, active: ProcessId, msg: MsgType) -> Self {
        self.completes = Some((active, msg));
        self
    }

    /// Attaches the first or second emission.
    pub fn sending(mut self, m: SentMsg) -> Self {
        if self.sent[0].is_none() {
            self.sent[0] = Some(m);
        } else {
            debug_assert!(self.sent[1].is_none(), "a step emits at most two messages");
            self.sent[1] = Some(m);
        }
        self
    }

    /// Attaches the consumed wire message (delivery steps).
    pub fn receiving(mut self, m: SentMsg) -> Self {
        debug_assert!(self.recv.is_none(), "a step consumes at most one message");
        self.recv = Some(m);
        self
    }

    /// Attaches a branch tag.
    pub fn tagged(mut self, tag: &Option<String>) -> Self {
        self.tag.clone_from(tag);
        self
    }

    /// Iterates over emissions.
    pub fn emissions(&self) -> impl Iterator<Item = &SentMsg> {
        self.sent.iter().flatten()
    }
}

/// A labelled transition system with encodable states.
pub trait TransitionSystem {
    /// Global configuration type.
    type State: Clone;

    /// The unique initial configuration.
    fn initial(&self) -> Self::State;

    /// Pushes every successor of `s` (with its label) into `out`.
    /// `out` is cleared by the callee.
    fn successors(&self, s: &Self::State, out: &mut Vec<(Label, Self::State)>) -> Result<()>;

    /// Writes a canonical byte encoding of `s` into `out` (cleared first).
    fn encode(&self, s: &Self::State, out: &mut Vec<u8>);

    /// Convenience: encoded bytes as a fresh vector. Hot paths (the
    /// search engines, the Equation 1 checker) should prefer
    /// [`TransitionSystem::encode`] with a reused buffer or an
    /// [`EncodeBuf`] — one heap allocation per *search*, not per state.
    fn encoded(&self, s: &Self::State) -> Vec<u8> {
        let mut v = Vec::new();
        self.encode(s, &mut v);
        v
    }

    /// Upper bound (in bytes) on [`TransitionSystem::encode`] output for
    /// any reachable state, when the system can compute one from its
    /// configuration. A `Some` bound unlocks the engines' zero-copy
    /// insert path: successors are encoded once, directly into the state
    /// store's bump arena, through [`TransitionSystem::encode_into`].
    /// `None` (the default) keeps the reference `Vec` path.
    fn max_encoded_len(&self) -> Option<usize> {
        None
    }

    /// Fast-path encoding: writes the canonical encoding of `s` into the
    /// front of `buf` and returns the number of bytes written. Must be
    /// byte-identical to [`TransitionSystem::encode`]; callers guarantee
    /// `buf.len() >= max_encoded_len()` (the engines only take this path
    /// when [`TransitionSystem::max_encoded_len`] returns a bound).
    ///
    /// The default is a reference fallback through a scratch `Vec` —
    /// correct for any system, but allocating; systems that report a
    /// bound should override it with a real slot writer.
    fn encode_into(&self, s: &Self::State, buf: &mut [u8]) -> usize {
        let mut v = Vec::new();
        self.encode(s, &mut v);
        buf[..v.len()].copy_from_slice(&v);
        v.len()
    }

    /// Inverse of [`TransitionSystem::encode`], when the system supports
    /// it: reconstructs the state whose canonical encoding is exactly
    /// `bytes`. Returns `None` on systems without a decoder, and on
    /// truncated, corrupt or trailing-garbage input — persistence uses
    /// this to rebuild checkpointed frontiers, so bad bytes must surface
    /// as a recovery failure, never a panic or a wrong state.
    ///
    /// Contract for implementations: for every reachable state `s`,
    /// `decode(encoded(s))` succeeds and re-encodes to the same bytes.
    fn decode(&self, _bytes: &[u8]) -> Option<Self::State> {
        None
    }

    /// Observability hook: the number of messages in flight on the directed
    /// link `from → to` in configuration `s`, when the semantics models
    /// links (`None` otherwise — the rendezvous level has no wires).
    fn link_occupancy(&self, _s: &Self::State, _from: ProcessId, _to: ProcessId) -> Option<u32> {
        None
    }

    /// Observability hook: `(used, capacity)` of the home node's request
    /// buffer in `s`, when the semantics models one (§3.2's bounded k).
    fn home_buffer_occupancy(&self, _s: &Self::State) -> Option<(u32, u32)> {
        None
    }

    /// Observability hook: a human-readable name for a message type.
    /// Systems carrying a spec override this with the spec's symbol table.
    fn msg_name(&self, m: MsgType) -> String {
        m.to_string()
    }
}

/// A reusable state-encoding buffer.
///
/// [`TransitionSystem::encoded`] allocates a fresh `Vec` per call, which
/// on checker hot paths means one heap allocation per visited state.
/// `EncodeBuf` keeps one growable buffer alive across calls: after the
/// first few states it stops allocating entirely (encodings of a given
/// system have near-constant size).
#[derive(Debug, Default)]
pub struct EncodeBuf(Vec<u8>);

impl EncodeBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes `s` into the buffer (replacing any previous contents) and
    /// returns the encoded bytes.
    pub fn fill<'a, T: TransitionSystem>(&'a mut self, sys: &T, s: &T::State) -> &'a [u8] {
        sys.encode(s, &mut self.0);
        &self.0
    }

    /// The bytes of the most recent [`EncodeBuf::fill`].
    pub fn bytes(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_core::ids::RemoteId;

    #[test]
    fn label_builders() {
        let l = Label::new(ProcessId::Home, LabelKind::Complete, "C1")
            .completing(ProcessId::Remote(RemoteId(0)), MsgType(1))
            .sending(SentMsg::ack(ProcessId::Home, ProcessId::Remote(RemoteId(0))));
        assert_eq!(l.completes, Some((ProcessId::Remote(RemoteId(0)), MsgType(1))));
        assert_eq!(l.emissions().count(), 1);
        assert!(l.emissions().next().unwrap().is_ack);

        let l2 = l.clone().sending(SentMsg::nack(ProcessId::Home, ProcessId::Remote(RemoteId(1))));
        assert_eq!(l2.emissions().count(), 2);
    }

    #[test]
    fn sent_msg_constructors() {
        let r = SentMsg::req(ProcessId::Home, ProcessId::Remote(RemoteId(0)), MsgType(7));
        assert_eq!(r.msg, Some(MsgType(7)));
        assert!(!r.is_ack && !r.is_nack);
        let n = SentMsg::nack(ProcessId::Home, ProcessId::Remote(RemoteId(0)));
        assert!(n.is_nack && n.msg.is_none());
    }
}
