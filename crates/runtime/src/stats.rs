//! Message and progress accounting for simulations.
//!
//! The paper's quality criterion (1) for a derived protocol is "the number
//! of request, acknowledge, and negative acknowledge messages needed for
//! carrying out the rendezvous specified in the given specification".
//! [`MsgStats`] counts exactly those, plus the completion events the §2.5
//! progress criterion is stated over.

use crate::system::Label;
use crate::wire::Network;
use ccr_core::ids::{MsgType, ProcessId};
use serde::Serialize;
use std::collections::HashMap;

/// Accumulated counters over a run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct MsgStats {
    /// Requests sent (including optimized replies), per message type.
    pub requests: HashMap<MsgType, u64>,
    /// Total acks sent.
    pub acks: u64,
    /// Total nacks sent.
    pub nacks: u64,
    /// Completed rendezvous, per message type.
    pub completed: HashMap<MsgType, u64>,
    /// Completed rendezvous per remote (only counted when the remote is the
    /// active party) — the starvation/fairness metric of §6.
    pub per_remote: HashMap<u32, u64>,
    /// Total transitions observed.
    pub steps: u64,
    /// Per-link occupancy high-water marks, recorded by simulators whose
    /// semantics models wires (empty otherwise) — the observed margin of
    /// the bounded-link assumption.
    pub link_high_water: Network,
}

impl MsgStats {
    /// Creates empty counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one transition label into the counters.
    pub fn record(&mut self, label: &Label) {
        self.steps += 1;
        for m in label.emissions() {
            if m.is_ack {
                self.acks += 1;
            } else if m.is_nack {
                self.nacks += 1;
            } else if let Some(msg) = m.msg {
                *self.requests.entry(msg).or_insert(0) += 1;
            }
        }
        if let Some((active, msg)) = label.completes {
            *self.completed.entry(msg).or_insert(0) += 1;
            if let ProcessId::Remote(r) = active {
                *self.per_remote.entry(r.0).or_insert(0) += 1;
            }
        }
    }

    /// Records an observed occupancy of the directed link `from → to`.
    pub fn record_occupancy(&mut self, from: ProcessId, to: ProcessId, occupancy: u32) {
        self.link_high_water.observe(from, to, occupancy);
    }

    /// The maximum link-occupancy high-water mark over all links (0 when
    /// the run never observed a wire).
    pub fn max_link_occupancy(&self) -> u32 {
        self.link_high_water.max_high_water()
    }

    /// Total wire messages (requests + acks + nacks).
    pub fn total_messages(&self) -> u64 {
        self.requests.values().sum::<u64>() + self.acks + self.nacks
    }

    /// Total completed rendezvous.
    pub fn total_completed(&self) -> u64 {
        self.completed.values().sum()
    }

    /// Messages per completed rendezvous; `None` when nothing completed.
    pub fn messages_per_rendezvous(&self) -> Option<f64> {
        let c = self.total_completed();
        if c == 0 {
            None
        } else {
            Some(self.total_messages() as f64 / c as f64)
        }
    }

    /// Jain's fairness index over per-remote completions for `n` remotes:
    /// `(Σx)² / (n·Σx²)`; 1.0 is perfectly fair, `1/n` is a single remote
    /// hogging all progress. Returns `None` if nothing completed.
    pub fn jain_fairness(&self, n: usize) -> Option<f64> {
        if n == 0 {
            return None;
        }
        let xs: Vec<f64> =
            (0..n as u32).map(|i| *self.per_remote.get(&i).unwrap_or(&0) as f64).collect();
        let sum: f64 = xs.iter().sum();
        if sum == 0.0 {
            return None;
        }
        let sumsq: f64 = xs.iter().map(|x| x * x).sum();
        Some(sum * sum / (n as f64 * sumsq))
    }

    /// Number of remotes that never completed a rendezvous — the starvation
    /// count of §6.
    pub fn starved(&self, n: usize) -> usize {
        (0..n as u32).filter(|i| self.per_remote.get(i).copied().unwrap_or(0) == 0).count()
    }

    /// Folds these counters into the shared metrics registry (the
    /// `runtime_*` family): message/ack/nack/completion/step totals plus
    /// one high-water gauge per observed link
    /// (`runtime_link_high_water_r0_h` for the wire `r0 → h`). Counters
    /// accumulate across calls; gauges keep their maxima. A no-op on a
    /// null registry.
    pub fn publish(&self, reg: &ccr_metrics::Registry) {
        if !reg.enabled() {
            return;
        }
        reg.counter("runtime_steps_total", "Simulator transitions observed").add(self.steps);
        reg.counter("runtime_requests_total", "Request messages sent (all types)")
            .add(self.requests.values().sum());
        reg.counter("runtime_acks_total", "Acks sent").add(self.acks);
        reg.counter("runtime_nacks_total", "Nacks sent").add(self.nacks);
        reg.counter("runtime_completed_total", "Completed rendezvous (all types)")
            .add(self.completed.values().sum());
        reg.gauge("runtime_max_link_occupancy", "Highest post-enqueue occupancy on any link")
            .record_max(u64::from(self.max_link_occupancy()));
        for (from, to, high_water) in self.link_high_water.iter() {
            reg.gauge(
                &format!("runtime_link_high_water_{from}_{to}"),
                "Post-enqueue occupancy high-water mark of one directed link",
            )
            .record_max(u64::from(high_water));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{LabelKind, SentMsg};
    use ccr_core::ids::RemoteId;

    fn remote(i: u32) -> ProcessId {
        ProcessId::Remote(RemoteId(i))
    }

    #[test]
    fn records_messages_and_completions() {
        let mut st = MsgStats::new();
        let l = Label::new(remote(0), LabelKind::Request, "C1").sending(SentMsg::req(
            remote(0),
            ProcessId::Home,
            MsgType(1),
        ));
        st.record(&l);
        let l2 = Label::new(ProcessId::Home, LabelKind::Complete, "C1")
            .completing(remote(0), MsgType(1))
            .sending(SentMsg::ack(ProcessId::Home, remote(0)));
        st.record(&l2);
        let l3 = Label::new(ProcessId::Home, LabelKind::Nacked, "T6")
            .sending(SentMsg::nack(ProcessId::Home, remote(1)));
        st.record(&l3);

        assert_eq!(st.total_messages(), 3);
        assert_eq!(st.acks, 1);
        assert_eq!(st.nacks, 1);
        assert_eq!(st.total_completed(), 1);
        assert_eq!(st.per_remote.get(&0), Some(&1));
        assert_eq!(st.messages_per_rendezvous(), Some(3.0));
        assert_eq!(st.steps, 3);
    }

    #[test]
    fn fairness_index_bounds() {
        let mut st = MsgStats::new();
        for _ in 0..10 {
            st.record(
                &Label::new(ProcessId::Home, LabelKind::Complete, "C1")
                    .completing(remote(0), MsgType(0)),
            );
        }
        // One remote hogs everything among 2: index = 1/2.
        let j = st.jain_fairness(2).unwrap();
        assert!((j - 0.5).abs() < 1e-9);
        assert_eq!(st.starved(2), 1);

        for _ in 0..10 {
            st.record(
                &Label::new(ProcessId::Home, LabelKind::Complete, "C1")
                    .completing(remote(1), MsgType(0)),
            );
        }
        let j = st.jain_fairness(2).unwrap();
        assert!((j - 1.0).abs() < 1e-9);
        assert_eq!(st.starved(2), 0);
    }

    #[test]
    fn occupancy_high_water_and_json() {
        let mut st = MsgStats::new();
        st.record_occupancy(remote(0), ProcessId::Home, 2);
        st.record_occupancy(remote(0), ProcessId::Home, 1);
        st.record_occupancy(ProcessId::Home, remote(0), 3);
        assert_eq!(st.max_link_occupancy(), 3);
        let json = serde::json::to_string(&st);
        assert!(json.contains("\"link_high_water\":{\"h->r0\":3,\"r0->h\":2}"), "{json}");
    }

    #[test]
    fn publish_maps_counters_to_registry() {
        let mut st = MsgStats::new();
        let l = Label::new(remote(0), LabelKind::Request, "C1").sending(SentMsg::req(
            remote(0),
            ProcessId::Home,
            MsgType(1),
        ));
        st.record(&l);
        st.record(
            &Label::new(ProcessId::Home, LabelKind::Complete, "C1")
                .completing(remote(0), MsgType(1))
                .sending(SentMsg::ack(ProcessId::Home, remote(0))),
        );
        st.record_occupancy(remote(0), ProcessId::Home, 2);
        let reg = ccr_metrics::Registry::new();
        st.publish(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["runtime_steps_total"], 2);
        assert_eq!(snap.counters["runtime_requests_total"], 1);
        assert_eq!(snap.counters["runtime_acks_total"], 1);
        assert_eq!(snap.counters["runtime_completed_total"], 1);
        assert_eq!(snap.gauges["runtime_link_high_water_r0_h"], 2);
        assert_eq!(snap.gauges["runtime_max_link_occupancy"], 2);
        // A second publish accumulates counters but not the gauge.
        st.publish(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["runtime_steps_total"], 4);
        assert_eq!(snap.gauges["runtime_max_link_occupancy"], 2);
    }

    #[test]
    fn empty_stats_edge_cases() {
        let st = MsgStats::new();
        assert_eq!(st.messages_per_rendezvous(), None);
        assert_eq!(st.jain_fairness(4), None);
        assert_eq!(st.jain_fairness(0), None);
        assert_eq!(st.starved(3), 3);
    }
}
