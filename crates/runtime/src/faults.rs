//! Wire-fault injection and recovery over the asynchronous semantics.
//!
//! The paper's network (§2.2) is reliable and FIFO. This module makes that
//! assumption *adversarial*: a seeded [`FaultPlan`] drops, duplicates,
//! reorders and delays individual wire messages, and an ideal-ARQ recovery
//! layer repairs the damage the way a real link layer would:
//!
//! * **Drops** are recovered by timeout and retransmission with capped
//!   exponential backoff. The harness plays the sender's keep-the-frame
//!   role: it remembers exactly which [`Wire`] vanished and how many live
//!   messages were ahead of it, and on recovery re-inserts the frame at
//!   that position — a resequencing receiver, so FIFO order is preserved
//!   end to end and the drop is observationally a pure delay.
//!   Retransmissions face the same loss probability as first
//!   transmissions, which is what makes the backoff real.
//! * **Duplicates** are appended to the link tail and tracked as *ghosts*;
//!   a link-layer sequence check absorbs them when they reach the head
//!   (and early, under capacity pressure), so the protocol never sees a
//!   double delivery — the observable cost is occupancy and delay.
//! * **Reorders** swap a just-sent message with its queue predecessor and
//!   are deliberately *not* masked: they probe the refinement's FIFO
//!   assumption directly and can surface genuine protocol reactions.
//! * **Delays** suppress delivery from a link for one scheduling step.
//!
//! Two consumers share the bookkeeping:
//!
//! * [`FaultHarness`] drives a [`Simulator`] run under a plan — the DSM
//!   machine and the CLI random walks use it;
//! * [`FaultClosure`] lifts an [`AsyncSystem`] into a transition system
//!   whose extra nondeterministic transitions are "drop", "duplicate" and
//!   "retransmit" under a bounded fault budget, so the model checker can
//!   *prove* safety under ≤ f faults and progress once faults quiesce.

use crate::asynch::{AsyncState, AsyncSystem};
use crate::error::Result;
use crate::sched::Scheduler;
use crate::sim::Simulator;
use crate::system::{Label, LabelKind, TransitionSystem};
use crate::wire::{Link, Wire};
use ccr_core::ids::{MsgType, ProcessId, RemoteId};
use ccr_faults::{FaultKind, FaultPlan, FaultStats};
use ccr_trace::{TraceEvent, TraceSink};

/// Identifies one directed link of the star topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct LinkRef {
    /// True for `remote → home`, false for `home → remote`.
    to_home: bool,
    /// Remote index on the non-home end.
    idx: usize,
}

impl LinkRef {
    fn of(from: ProcessId, to: ProcessId) -> Option<LinkRef> {
        match (from, to) {
            (ProcessId::Remote(r), ProcessId::Home) => {
                Some(LinkRef { to_home: true, idx: r.index() })
            }
            (ProcessId::Home, ProcessId::Remote(r)) => {
                Some(LinkRef { to_home: false, idx: r.index() })
            }
            _ => None,
        }
    }

    fn endpoints(self) -> (ProcessId, ProcessId) {
        let r = ProcessId::Remote(RemoteId(self.idx as u32));
        if self.to_home {
            (r, ProcessId::Home)
        } else {
            (ProcessId::Home, r)
        }
    }

    fn link(self, s: &AsyncState) -> &Link {
        if self.to_home {
            &s.to_home[self.idx]
        } else {
            &s.to_remote[self.idx]
        }
    }

    fn link_mut(self, s: &mut AsyncState) -> &mut Link {
        if self.to_home {
            &mut s.to_home[self.idx]
        } else {
            &mut s.to_remote[self.idx]
        }
    }

    fn all(n: usize) -> impl Iterator<Item = LinkRef> {
        (0..n).flat_map(|i| [LinkRef { to_home: true, idx: i }, LinkRef { to_home: false, idx: i }])
    }
}

/// A dropped message the recovery layer still owes the receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LostMsg {
    link: LinkRef,
    wire: Wire,
    /// Live queue entries that were ahead of the message when it vanished.
    /// Decremented as they are consumed; the retransmission re-inserts at
    /// this index, restoring the original FIFO order.
    ahead: usize,
    /// Same-link holes that precede this one in the original send order.
    /// Retransmission is held until this reaches zero, so simultaneously
    /// lost messages of one link are always restored oldest first — live
    /// positions alone cannot order two holes.
    holes_ahead: usize,
    /// Harness step at which the next retransmission attempt fires
    /// (always 0 in the model-checking closure, where retransmission is a
    /// nondeterministic transition instead of a timer).
    due: u64,
    /// Failed retransmission attempts so far.
    attempt: u32,
}

/// A duplicate copy in a link queue, tracked by position so the link layer
/// can absorb it before the protocol sees a double delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ghost {
    link: LinkRef,
    pos: usize,
}

/// Joint bookkeeping for holes (dropped messages) and ghosts (duplicate
/// copies), with the position arithmetic both consumers share.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Ledger {
    lost: Vec<LostMsg>,
    ghosts: Vec<Ghost>,
}

impl Ledger {
    /// A queue element of `link` at position `pos` was removed: everything
    /// tracked behind it moves up one slot.
    fn on_remove_at(&mut self, link: LinkRef, pos: usize) {
        for e in self.lost.iter_mut().filter(|e| e.link == link && e.ahead > pos) {
            e.ahead -= 1;
        }
        for g in self.ghosts.iter_mut().filter(|g| g.link == link && g.pos > pos) {
            g.pos -= 1;
        }
    }

    /// A queue element was inserted into `link` at position `pos`:
    /// everything tracked at or behind that position moves back one slot.
    fn on_insert_at(&mut self, link: LinkRef, pos: usize) {
        for e in self.lost.iter_mut().filter(|e| e.link == link && e.ahead >= pos) {
            e.ahead += 1;
        }
        for g in self.ghosts.iter_mut().filter(|g| g.link == link && g.pos >= pos) {
            g.pos += 1;
        }
    }

    /// The *live tail* of `link` (a real message, never a ghost) was
    /// dropped: position bookkeeping plus hole ordering. A hole whose live
    /// position was behind the tail keeps its order but trades a live
    /// predecessor for a lost one. Returns how many same-link holes
    /// precede the new one.
    fn on_drop_tail(&mut self, link: LinkRef, tail: usize) -> usize {
        let mut holes_ahead = 0;
        for e in self.lost.iter_mut().filter(|e| e.link == link) {
            if e.ahead <= tail {
                holes_ahead += 1;
            } else {
                e.ahead -= 1;
                e.holes_ahead += 1;
            }
        }
        for g in self.ghosts.iter_mut().filter(|g| g.link == link && g.pos > tail) {
            g.pos -= 1;
        }
        holes_ahead
    }

    /// Lost entry `i` was successfully retransmitted: remove it and
    /// release its hold on the same-link holes behind it (eligibility
    /// guarantees every remaining same-link hole followed it).
    fn on_retransmit(&mut self, i: usize) -> LostMsg {
        let e = self.lost.remove(i);
        for o in self.lost.iter_mut().filter(|o| o.link == e.link) {
            o.holes_ahead -= 1;
        }
        e
    }

    /// True when a hole sits at the head of `link`: the resequencing
    /// receiver holds later frames until the lost one is retransmitted.
    fn blocked(&self, link: LinkRef) -> bool {
        self.lost.iter().any(|e| e.link == link && e.ahead == 0)
    }

    fn ghost_at(&self, link: LinkRef, pos: usize) -> bool {
        self.ghosts.iter().any(|g| g.link == link && g.pos == pos)
    }

    fn ghost_index_at(&self, link: LinkRef, pos: usize) -> Option<usize> {
        self.ghosts.iter().position(|g| g.link == link && g.pos == pos)
    }

    fn newest_ghost(&self, link: LinkRef) -> Option<usize> {
        self.ghosts
            .iter()
            .enumerate()
            .filter(|(_, g)| g.link == link)
            .max_by_key(|(_, g)| g.pos)
            .map(|(i, _)| i)
    }

    fn touches(&self, link: LinkRef) -> bool {
        self.lost.iter().any(|e| e.link == link) || self.ghosts.iter().any(|g| g.link == link)
    }
}

fn wire_msg(w: &Wire) -> Option<MsgType> {
    w.req_msg()
}

// ---------------------------------------------------------------------------
// Simulation harness
// ---------------------------------------------------------------------------

/// Default initial retransmission timeout, in scheduling steps.
pub const DEFAULT_RTO: u64 = 8;
/// Default backoff cap, in scheduling steps.
pub const DEFAULT_RTO_CAP: u64 = 512;

/// Drives a [`Simulator`] over an [`AsyncSystem`] while injecting the
/// faults a [`FaultPlan`] prescribes and recovering from them.
///
/// With an inactive plan the harness adds no transitions, suppresses no
/// deliveries and emits no events: a faulted run degenerates to the plain
/// observed run, byte for byte.
#[derive(Debug, Clone)]
pub struct FaultHarness {
    plan: FaultPlan,
    rto: u64,
    rto_cap: u64,
    ledger: Ledger,
    stats: FaultStats,
    now: u64,
}

impl FaultHarness {
    /// A harness with the default backoff parameters.
    pub fn new(plan: FaultPlan) -> Self {
        Self::with_backoff(plan, DEFAULT_RTO, DEFAULT_RTO_CAP)
    }

    /// A harness with explicit initial timeout and backoff cap (both in
    /// scheduling steps). `rto` must be at least 1.
    pub fn with_backoff(plan: FaultPlan, rto: u64, rto_cap: u64) -> Self {
        assert!(rto >= 1, "retransmission timeout must be at least one step");
        Self {
            plan,
            rto,
            rto_cap: rto_cap.max(rto),
            ledger: Ledger::default(),
            stats: FaultStats::default(),
            now: 0,
        }
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Injection and recovery counters so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Dropped messages not yet successfully retransmitted. While this is
    /// non-zero a quiet network is *recovering*, not deadlocked.
    pub fn pending_recoveries(&self) -> usize {
        self.ledger.lost.len()
    }

    fn backoff(&self, attempt: u32) -> u64 {
        self.rto.checked_shl(attempt.min(32)).unwrap_or(u64::MAX).min(self.rto_cap)
    }

    /// Executes one step of `sim` under the plan: fires due retransmits,
    /// absorbs duplicate ghosts, suppresses deliveries from delayed or
    /// hole-blocked links, lets the scheduler pick among what remains
    /// (honouring `filter`), then applies send faults to the messages the
    /// step emitted plus any scripted faults for this step.
    ///
    /// Returns the fired label, or `None` if nothing was enabled — which,
    /// unlike in the plain simulator, can mean "everything is delayed or
    /// awaiting retransmission" rather than deadlock; check
    /// [`pending_recoveries`](Self::pending_recoveries) before concluding.
    pub fn step(
        &mut self,
        sim: &mut Simulator<'_, AsyncSystem<'_>>,
        sched: &mut dyn Scheduler,
        mut filter: impl FnMut(&Label) -> bool,
        sink: &mut dyn TraceSink,
    ) -> Result<Option<Label>> {
        let now = self.now;
        let cap = sim.system().config().link_capacity;
        let n = sim.system().n() as usize;

        if self.plan.is_active() || !self.ledger.lost.is_empty() || !self.ledger.ghosts.is_empty() {
            self.absorb_pressure(sim, cap, n);
            self.process_retransmits(sim, sink, cap, now);
        }

        let held = self.held_links(sim, sink, n, now);
        let fired = sim.step_observed(
            sched,
            |l| {
                if let Some(r) = &l.recv {
                    if let Some(lr) = LinkRef::of(r.from, r.to) {
                        if held.contains(&lr) {
                            return false;
                        }
                    }
                }
                filter(l)
            },
            sink,
        )?;

        if let Some(label) = &fired {
            let seq = sim.stats().steps.saturating_sub(1);
            if let Some(r) = &label.recv {
                if let Some(lr) = LinkRef::of(r.from, r.to) {
                    self.ledger.on_remove_at(lr, 0);
                }
            }
            let sent: Vec<_> = label.emissions().copied().collect();
            for m in sent {
                let Some(lr) = LinkRef::of(m.from, m.to) else { continue };
                if let Some(kind) = self.plan.decide_send(now, m.from, m.to) {
                    self.apply_fault(sim, sink, lr, kind, seq, cap, now, false);
                }
            }
        }

        let scripted: Vec<_> =
            self.plan.scripted_at(now).filter(|f| f.kind != FaultKind::Delay).copied().collect();
        let seq = sim.stats().steps.saturating_sub(u64::from(fired.is_some()));
        for f in scripted {
            if let Some(lr) = LinkRef::of(f.from, f.to) {
                self.apply_fault(sim, sink, lr, f.kind, seq, cap, now, true);
            }
        }

        self.absorb_heads(sim, n);
        self.now += 1;
        Ok(fired)
    }

    /// Links whose delivery is suppressed this step: resequencing holds
    /// (hole at the head) plus drawn or scripted delays.
    fn held_links(
        &mut self,
        sim: &Simulator<'_, AsyncSystem<'_>>,
        sink: &mut dyn TraceSink,
        n: usize,
        now: u64,
    ) -> Vec<LinkRef> {
        let mut held = Vec::new();
        if !self.plan.is_active() && self.ledger.lost.is_empty() {
            return held;
        }
        for l in LinkRef::all(n) {
            if self.ledger.blocked(l) {
                held.push(l);
                continue;
            }
            let link = l.link(sim.state());
            if link.is_empty() {
                continue;
            }
            let (from, to) = l.endpoints();
            let scripted = self
                .plan
                .scripted_at(now)
                .any(|f| f.kind == FaultKind::Delay && LinkRef::of(f.from, f.to) == Some(l));
            if scripted || self.plan.delayed(now, from, to) {
                held.push(l);
                self.stats.delays += 1;
                if scripted {
                    self.stats.scripted += 1;
                }
                if sink.enabled() {
                    let head = link.head().expect("non-empty link");
                    sink.emit(&TraceEvent::FaultInjected {
                        seq: sim.stats().steps,
                        kind: FaultKind::Delay.name().into(),
                        from: from.to_string(),
                        to: to.to_string(),
                        wire: head.kind_name().into(),
                        msg: wire_msg(head).map(|m| sim.system().msg_name(m)),
                    });
                }
            }
        }
        held
    }

    /// Absorbs duplicate ghosts on full links so the fault layer never
    /// causes a spurious `LinkOverflow`: the link layer's dedup fires
    /// under pressure exactly when the extra copy would matter.
    fn absorb_pressure(&mut self, sim: &mut Simulator<'_, AsyncSystem<'_>>, cap: usize, n: usize) {
        for l in LinkRef::all(n) {
            while l.link(sim.state()).len() >= cap {
                let Some(gi) = self.ledger.newest_ghost(l) else { break };
                let pos = self.ledger.ghosts[gi].pos;
                l.link_mut(sim.state_mut()).remove_at(pos);
                self.ledger.ghosts.swap_remove(gi);
                self.ledger.on_remove_at(l, pos);
                self.stats.absorbed += 1;
            }
        }
    }

    /// Absorbs ghosts that reached a link head: the original was already
    /// delivered, so the receiver's sequence check discards the copy.
    fn absorb_heads(&mut self, sim: &mut Simulator<'_, AsyncSystem<'_>>, n: usize) {
        if self.ledger.ghosts.is_empty() {
            return;
        }
        for l in LinkRef::all(n) {
            while let Some(gi) = self.ledger.ghost_index_at(l, 0) {
                l.link_mut(sim.state_mut()).pop();
                self.ledger.ghosts.swap_remove(gi);
                self.ledger.on_remove_at(l, 0);
                self.stats.absorbed += 1;
            }
        }
    }

    /// Fires every due retransmission: the attempt either succeeds (the
    /// frame is re-inserted at its original FIFO position) or is lost
    /// again, doubling the backoff.
    fn process_retransmits(
        &mut self,
        sim: &mut Simulator<'_, AsyncSystem<'_>>,
        sink: &mut dyn TraceSink,
        cap: usize,
        now: u64,
    ) {
        let mut i = 0;
        while i < self.ledger.lost.len() {
            let e = self.ledger.lost[i];
            // An older hole on the same link must be restored first; once
            // it is, this (already due) entry fires on the next step.
            if e.due > now || e.holes_ahead > 0 {
                i += 1;
                continue;
            }
            let (from, to) = e.link.endpoints();
            if self.plan.drops_retransmit(now, from, to, e.attempt) {
                let attempt = e.attempt + 1;
                let backoff = self.backoff(attempt);
                self.ledger.lost[i].attempt = attempt;
                self.ledger.lost[i].due = now + backoff;
                self.stats.retransmits += 1;
                self.stats.drops += 1;
                if sink.enabled() {
                    sink.emit(&TraceEvent::RetransmitTimeout {
                        seq: sim.stats().steps,
                        from: from.to_string(),
                        to: to.to_string(),
                        wire: e.wire.kind_name().into(),
                        msg: wire_msg(&e.wire).map(|m| sim.system().msg_name(m)),
                        attempt,
                        backoff,
                    });
                    sink.emit(&TraceEvent::FaultInjected {
                        seq: sim.stats().steps,
                        kind: FaultKind::Drop.name().into(),
                        from: from.to_string(),
                        to: to.to_string(),
                        wire: e.wire.kind_name().into(),
                        msg: wire_msg(&e.wire).map(|m| sim.system().msg_name(m)),
                    });
                }
                i += 1;
            } else {
                let len = e.link.link(sim.state()).len();
                if len >= cap {
                    // No room this step; the sender tries again shortly.
                    self.ledger.lost[i].due = now + 1;
                    i += 1;
                    continue;
                }
                let entry = self.ledger.on_retransmit(i);
                let pos = entry.ahead.min(len);
                e.link.link_mut(sim.state_mut()).insert(pos, entry.wire);
                self.ledger.on_insert_at(entry.link, pos);
                self.stats.retransmits += 1;
                self.stats.recovered += 1;
                sim.stats_mut().record_occupancy(from, to, (len + 1) as u32);
                if sink.enabled() {
                    sink.emit(&TraceEvent::RetransmitTimeout {
                        seq: sim.stats().steps,
                        from: from.to_string(),
                        to: to.to_string(),
                        wire: entry.wire.kind_name().into(),
                        msg: wire_msg(&entry.wire).map(|m| sim.system().msg_name(m)),
                        attempt: entry.attempt + 1,
                        backoff: 0,
                    });
                }
            }
        }
    }

    /// Applies one send-side fault to the tail of `lr`'s queue (where the
    /// just-emitted message sits).
    #[allow(clippy::too_many_arguments)]
    fn apply_fault(
        &mut self,
        sim: &mut Simulator<'_, AsyncSystem<'_>>,
        sink: &mut dyn TraceSink,
        lr: LinkRef,
        kind: FaultKind,
        seq: u64,
        cap: usize,
        now: u64,
        scripted: bool,
    ) {
        let (from, to) = lr.endpoints();
        let len = lr.link(sim.state()).len();
        if len == 0 {
            return;
        }
        let tail = len - 1;
        let applied: Option<Wire> = match kind {
            FaultKind::Drop => {
                if self.ledger.ghost_at(lr, tail) {
                    None // dropping a duplicate copy is a no-op; skip
                } else {
                    let wire = lr.link_mut(sim.state_mut()).remove_at(tail).expect("tail");
                    let holes_ahead = self.ledger.on_drop_tail(lr, tail);
                    self.ledger.lost.push(LostMsg {
                        link: lr,
                        wire,
                        ahead: tail,
                        holes_ahead,
                        due: now + self.rto,
                        attempt: 0,
                    });
                    self.stats.drops += 1;
                    Some(wire)
                }
            }
            FaultKind::Duplicate => {
                if len >= cap || self.ledger.ghost_at(lr, tail) {
                    None
                } else {
                    let wire = *lr.link(sim.state()).get(tail).expect("tail");
                    lr.link_mut(sim.state_mut()).push(wire);
                    self.ledger.ghosts.push(Ghost { link: lr, pos: len });
                    self.stats.dups += 1;
                    sim.stats_mut().record_occupancy(from, to, (len + 1) as u32);
                    Some(wire)
                }
            }
            FaultKind::Reorder => {
                // Only clean links: reordering across a hole or a ghost
                // has no physical reading.
                if len < 2 || self.ledger.touches(lr) {
                    None
                } else {
                    let wire = *lr.link(sim.state()).get(tail).expect("tail");
                    lr.link_mut(sim.state_mut()).swap(tail, tail - 1);
                    self.stats.reorders += 1;
                    Some(wire)
                }
            }
            FaultKind::Delay => None, // delivery-side; handled in held_links
        };
        if let Some(wire) = applied {
            if scripted {
                self.stats.scripted += 1;
            }
            if sink.enabled() {
                sink.emit(&TraceEvent::FaultInjected {
                    seq,
                    kind: kind.name().into(),
                    from: from.to_string(),
                    to: to.to_string(),
                    wire: wire.kind_name().into(),
                    msg: wire_msg(&wire).map(|m| sim.system().msg_name(m)),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Model-checking fault closure
// ---------------------------------------------------------------------------

/// The fault closure of an [`AsyncSystem`]: every reachable behaviour of
/// the base system, plus up to `budget` adversarial drop/duplicate faults
/// as extra nondeterministic transitions, plus the (always enabled, free)
/// recovery transitions that retransmit a lost frame into its original
/// FIFO position.
///
/// Exploring this system exhaustively proves that the protocol is safe
/// under **any** placement of at most `budget` faults, and a progress
/// check over it proves rendezvous keep completing once faults quiesce —
/// the recovery transitions are always available, so no fault can wedge
/// the protocol for good.
#[derive(Debug, Clone)]
pub struct FaultClosure<'a> {
    base: AsyncSystem<'a>,
    budget: u32,
}

impl<'a> FaultClosure<'a> {
    /// Wraps `base` with a fault budget.
    pub fn new(base: AsyncSystem<'a>, budget: u32) -> Self {
        Self { base, budget }
    }

    /// The wrapped asynchronous system.
    pub fn base(&self) -> &AsyncSystem<'a> {
        &self.base
    }

    /// The fault budget.
    pub fn budget(&self) -> u32 {
        self.budget
    }

    /// Restores the stored-state invariants after a transition: no ghost
    /// at a link head (the receiver's dedup discards it on arrival) and no
    /// ghost on a full link (dedup under pressure) — so a full link always
    /// means *genuine* traffic and `LinkOverflow` keeps its meaning.
    fn normalize(&self, s: &mut FaultState) {
        if s.ledger.ghosts.is_empty() {
            return;
        }
        let cap = self.base.config().link_capacity;
        for l in LinkRef::all(self.base.n() as usize) {
            while let Some(gi) = s.ledger.ghost_index_at(l, 0) {
                l.link_mut(&mut s.base).pop();
                s.ledger.ghosts.swap_remove(gi);
                s.ledger.on_remove_at(l, 0);
            }
            while l.link(&s.base).len() >= cap {
                let Some(gi) = s.ledger.newest_ghost(l) else { break };
                let pos = s.ledger.ghosts[gi].pos;
                l.link_mut(&mut s.base).remove_at(pos);
                s.ledger.ghosts.swap_remove(gi);
                s.ledger.on_remove_at(l, pos);
            }
        }
    }
}

/// A state of the fault closure: the base configuration plus the fault
/// budget left and the recovery ledger.
#[derive(Debug, Clone)]
pub struct FaultState {
    /// The underlying asynchronous configuration.
    pub base: AsyncState,
    /// Adversarial faults the environment may still inject.
    pub faults_left: u32,
    ledger: Ledger,
}

impl FaultState {
    /// Dropped messages not yet retransmitted in this configuration.
    pub fn lost_in_flight(&self) -> usize {
        self.ledger.lost.len()
    }

    /// Duplicate copies still sitting in link queues.
    pub fn ghosts_in_flight(&self) -> usize {
        self.ledger.ghosts.len()
    }
}

impl TransitionSystem for FaultClosure<'_> {
    type State = FaultState;

    fn initial(&self) -> FaultState {
        FaultState {
            base: self.base.initial(),
            faults_left: self.budget,
            ledger: Ledger::default(),
        }
    }

    fn successors(&self, s: &FaultState, out: &mut Vec<(Label, FaultState)>) -> Result<()> {
        out.clear();
        let cap = self.base.config().link_capacity;
        let n = self.base.n() as usize;

        // Base protocol transitions, minus deliveries from links whose
        // head frame is lost (the resequencer holds successors back).
        let mut base_out = Vec::new();
        self.base.successors(&s.base, &mut base_out)?;
        for (label, nb) in base_out {
            if let Some(r) = &label.recv {
                if let Some(lr) = LinkRef::of(r.from, r.to) {
                    if s.ledger.blocked(lr) {
                        continue;
                    }
                }
            }
            let mut ns =
                FaultState { base: nb, faults_left: s.faults_left, ledger: s.ledger.clone() };
            if let Some(r) = &label.recv {
                if let Some(lr) = LinkRef::of(r.from, r.to) {
                    ns.ledger.on_remove_at(lr, 0);
                }
            }
            self.normalize(&mut ns);
            out.push((label, ns));
        }

        // Recovery: retransmit any lost frame into its original position.
        // Free (no budget) — recovery repairs, it does not damage. Holes
        // with lost same-link predecessors wait their turn: restoring them
        // first would reverse the original send order.
        for (i, e) in s.ledger.lost.iter().enumerate() {
            if e.holes_ahead > 0 {
                continue;
            }
            let len = e.link.link(&s.base).len();
            if len >= cap {
                continue;
            }
            let (from, to) = e.link.endpoints();
            let mut ns = s.clone();
            let pos = e.ahead.min(len);
            e.link.link_mut(&mut ns.base).insert(pos, e.wire);
            ns.ledger.on_retransmit(i);
            ns.ledger.on_insert_at(e.link, pos);
            self.normalize(&mut ns);
            let tag = Some(format!("{from}->{to}#{i}"));
            out.push((Label::new(from, LabelKind::Fault, "fault/retransmit").tagged(&tag), ns));
        }

        // Adversary: drop or duplicate the tail of any link, while budget
        // lasts. Tails only — a fault hits a message as it is sent; deeper
        // queue positions are reached by faulting earlier.
        if s.faults_left > 0 {
            for l in LinkRef::all(n) {
                let len = l.link(&s.base).len();
                if len == 0 {
                    continue;
                }
                let tail = len - 1;
                if s.ledger.ghost_at(l, tail) {
                    continue;
                }
                let (from, to) = l.endpoints();
                let tag = Some(format!("{from}->{to}"));
                {
                    let mut ns = s.clone();
                    ns.faults_left -= 1;
                    let wire = l.link_mut(&mut ns.base).remove_at(tail).expect("tail");
                    let holes_ahead = ns.ledger.on_drop_tail(l, tail);
                    ns.ledger.lost.push(LostMsg {
                        link: l,
                        wire,
                        ahead: tail,
                        holes_ahead,
                        due: 0,
                        attempt: 0,
                    });
                    self.normalize(&mut ns);
                    out.push((Label::new(from, LabelKind::Fault, "fault/drop").tagged(&tag), ns));
                }
                if len + 1 < cap {
                    let mut ns = s.clone();
                    ns.faults_left -= 1;
                    let wire = *l.link(&ns.base).get(tail).expect("tail");
                    l.link_mut(&mut ns.base).push(wire);
                    ns.ledger.ghosts.push(Ghost { link: l, pos: len });
                    self.normalize(&mut ns);
                    out.push((Label::new(from, LabelKind::Fault, "fault/dup").tagged(&tag), ns));
                }
            }
        }
        Ok(())
    }

    fn encode(&self, s: &FaultState, out: &mut Vec<u8>) {
        self.base.encode(&s.base, out);
        out.push(s.faults_left as u8);
        // Canonicalize ledger order so states reached by different fault
        // interleavings dedup. `due`/`attempt` are timer bookkeeping with
        // no meaning here (always 0) and are excluded. Entries are
        // encoded straight into `out` (variable length — the wire may
        // carry a value) with their byte ranges recorded; when more than
        // one entry landed out of order, the tail is rewritten through a
        // single scratch copy instead of allocating one `Vec` per entry.
        out.push(s.ledger.lost.len() as u8);
        let lost_base = out.len();
        let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(s.ledger.lost.len());
        for e in &s.ledger.lost {
            let start = out.len();
            out.push(u8::from(e.link.to_home));
            out.push(e.link.idx as u8);
            out.push(e.ahead as u8);
            out.push(e.holes_ahead as u8);
            e.wire.encode(out);
            ranges.push((start, out.len()));
        }
        let sorted = ranges.windows(2).all(|w| out[w[0].0..w[0].1] <= out[w[1].0..w[1].1]);
        if !sorted {
            ranges.sort_by(|a, b| out[a.0..a.1].cmp(&out[b.0..b.1]));
            let mut tmp = Vec::with_capacity(out.len() - lost_base);
            for &(a, b) in &ranges {
                tmp.extend_from_slice(&out[a..b]);
            }
            out.truncate(lost_base);
            out.extend_from_slice(&tmp);
        }
        let mut ghosts: Vec<[u8; 3]> = s
            .ledger
            .ghosts
            .iter()
            .map(|g| [u8::from(g.link.to_home), g.link.idx as u8, g.pos as u8])
            .collect();
        ghosts.sort();
        out.push(ghosts.len() as u8);
        for b in ghosts {
            out.extend_from_slice(&b);
        }
    }

    fn link_occupancy(&self, s: &FaultState, from: ProcessId, to: ProcessId) -> Option<u32> {
        self.base.link_occupancy(&s.base, from, to)
    }

    fn home_buffer_occupancy(&self, s: &FaultState) -> Option<(u32, u32)> {
        self.base.home_buffer_occupancy(&s.base)
    }

    fn msg_name(&self, m: MsgType) -> String {
        self.base.msg_name(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asynch::AsyncConfig;
    use crate::sched::RandomSched;
    use ccr_core::builder::ProtocolBuilder;
    use ccr_core::expr::Expr;
    use ccr_core::refine::{refine, RefineOptions};
    use ccr_core::value::Value;
    use ccr_faults::{FaultRates, FaultSpec, ScriptedFault};
    use ccr_trace::NullSink;

    fn token_spec() -> ccr_core::process::ProtocolSpec {
        let mut b = ProtocolBuilder::new("token");
        let req = b.msg("req");
        let gr = b.msg("gr");
        let rel = b.msg("rel");
        let o = b.home_var("o", Value::Node(RemoteId(0)));
        let f = b.home_state("F");
        let g1 = b.home_state("G1");
        let e = b.home_state("E");
        b.home(f).recv_any(req).bind_sender(o).goto(g1);
        b.home(g1).send_to(Expr::Var(o), gr).goto(e);
        b.home(e).recv_exact(rel, Expr::Var(o)).goto(f);
        let i = b.remote_state("I");
        let w = b.remote_state("W");
        let v = b.remote_state("V");
        b.remote(i).send(req).goto(w);
        b.remote(w).recv(gr).goto(v);
        b.remote(v).send(rel).goto(i);
        b.finish().unwrap()
    }

    #[test]
    fn ledger_position_arithmetic() {
        let l = LinkRef { to_home: true, idx: 0 };
        let mut led = Ledger::default();
        led.lost.push(LostMsg {
            link: l,
            wire: Wire::Ack,
            ahead: 2,
            holes_ahead: 0,
            due: 0,
            attempt: 0,
        });
        led.ghosts.push(Ghost { link: l, pos: 3 });
        led.on_remove_at(l, 0); // consume ahead of both
        assert_eq!(led.lost[0].ahead, 1);
        assert_eq!(led.ghosts[0].pos, 2);
        led.on_insert_at(l, 1); // re-insert at the hole's position
        assert_eq!(led.lost[0].ahead, 2);
        assert_eq!(led.ghosts[0].pos, 3);
        led.on_remove_at(l, 4); // behind both: no change
        assert_eq!(led.lost[0].ahead, 2);
        assert_eq!(led.ghosts[0].pos, 3);
        assert!(!led.blocked(l));
        led.lost[0].ahead = 0;
        assert!(led.blocked(l));
    }

    #[test]
    fn simultaneous_holes_restore_in_send_order() {
        // Queue [A, B] (A sent first). Drop tail B, then drop tail A: B's
        // hole must record A's hole as a predecessor, and only A may be
        // retransmitted first.
        let l = LinkRef { to_home: true, idx: 0 };
        let mut led = Ledger::default();
        let b_holes = led.on_drop_tail(l, 1);
        led.lost.push(LostMsg {
            link: l,
            wire: Wire::Ack,
            ahead: 1,
            holes_ahead: b_holes,
            due: 0,
            attempt: 0,
        });
        assert_eq!(b_holes, 0);
        let a_holes = led.on_drop_tail(l, 0);
        led.lost.push(LostMsg {
            link: l,
            wire: Wire::Nack,
            ahead: 0,
            holes_ahead: a_holes,
            due: 0,
            attempt: 0,
        });
        assert_eq!(a_holes, 0, "A was sent before B's hole");
        assert_eq!(led.lost[0].ahead, 0, "B lost its live predecessor A");
        assert_eq!(led.lost[0].holes_ahead, 1, "B now waits for A's hole");
        // Retransmit A (index 1): B becomes eligible, behind live A.
        let a = led.on_retransmit(1);
        assert_eq!(a.wire, Wire::Nack);
        led.on_insert_at(l, 0);
        assert_eq!(led.lost[0].holes_ahead, 0);
        assert_eq!(led.lost[0].ahead, 1, "B re-inserts behind the restored A");
    }

    #[test]
    fn faulted_run_recovers_and_completes() {
        let spec = token_spec();
        let refined = refine(&spec, &RefineOptions::default()).unwrap();
        let sys = AsyncSystem::new(&refined, 3, AsyncConfig::default());
        let plan = FaultPlan::new(
            FaultSpec::with_rates(FaultRates { drop: 0.08, dup: 0.04, ..FaultRates::default() }),
            11,
        );
        let mut harness = FaultHarness::new(plan);
        let mut sim = Simulator::new(&sys);
        let mut sched = RandomSched::new(5);
        let mut idle = 0;
        for _ in 0..8000 {
            match harness.step(&mut sim, &mut sched, |_| true, &mut NullSink).unwrap() {
                Some(_) => idle = 0,
                None => {
                    idle += 1;
                    assert!(
                        harness.pending_recoveries() > 0 || idle < 3,
                        "quiet network with nothing to recover"
                    );
                }
            }
        }
        let stats = *harness.stats();
        assert!(stats.drops > 0, "plan never dropped anything: {stats:?}");
        assert!(stats.recovered > 0, "no drop was ever recovered: {stats:?}");
        assert!(stats.dups > 0 && stats.absorbed > 0, "dup/dedup unexercised: {stats:?}");
        assert!(
            sim.stats().total_completed() > 100,
            "rendezvous kept completing under faults: {}",
            sim.stats().total_completed()
        );
    }

    #[test]
    fn scripted_drop_is_recovered_deterministically() {
        let spec = token_spec();
        let refined = refine(&spec, &RefineOptions::default()).unwrap();
        let sys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
        let run = |script: bool| -> (u64, FaultStats) {
            let mut plan = FaultPlan::inactive();
            if script {
                // Blanket-drop everything sent home at steps 2..6 — the
                // exact victims are schedule-dependent but deterministic.
                for step in 2..6 {
                    for r in 0..2 {
                        plan.script(ScriptedFault {
                            step,
                            from: ProcessId::Remote(RemoteId(r)),
                            to: ProcessId::Home,
                            kind: FaultKind::Drop,
                        });
                    }
                }
            }
            let mut harness = FaultHarness::new(plan);
            let mut sim = Simulator::new(&sys);
            let mut sched = RandomSched::new(9);
            for _ in 0..2000 {
                harness.step(&mut sim, &mut sched, |_| true, &mut NullSink).unwrap();
            }
            (sim.stats().total_completed(), *harness.stats())
        };
        let (done_clean, _) = run(false);
        let (done_faulted, stats) = run(true);
        assert!(stats.drops > 0 && stats.recovered == stats.drops, "{stats:?}");
        assert!(done_faulted > 100);
        // Recovery is a pure delay: throughput dips but does not collapse.
        assert!(done_faulted * 2 > done_clean, "{done_faulted} vs {done_clean}");
    }

    #[test]
    fn inactive_harness_matches_plain_simulation() {
        let spec = token_spec();
        let refined = refine(&spec, &RefineOptions::default()).unwrap();
        let sys = AsyncSystem::new(&refined, 3, AsyncConfig::default());
        let mut plain = Simulator::new(&sys);
        let mut plain_sched = RandomSched::new(7);
        let mut faulted = Simulator::new(&sys);
        let mut faulted_sched = RandomSched::new(7);
        let mut harness = FaultHarness::new(FaultPlan::inactive());
        for _ in 0..3000 {
            let a = plain.step_observed(&mut plain_sched, |_| true, &mut NullSink).unwrap();
            let b =
                harness.step(&mut faulted, &mut faulted_sched, |_| true, &mut NullSink).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(plain.state(), faulted.state());
        assert_eq!(plain.stats(), faulted.stats());
        assert_eq!(harness.stats(), &FaultStats::default());
    }

    #[test]
    fn closure_with_zero_budget_equals_base_reachability() {
        use std::collections::HashSet;
        let spec = token_spec();
        let refined = refine(&spec, &RefineOptions::default()).unwrap();
        let sys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
        let closure = FaultClosure::new(sys.clone(), 0);
        let explore_base = {
            let mut seen = HashSet::new();
            let mut frontier = vec![sys.initial()];
            seen.insert(sys.encoded(&sys.initial()));
            while let Some(s) = frontier.pop() {
                let mut out = Vec::new();
                sys.successors(&s, &mut out).unwrap();
                for (_, ns) in out {
                    if seen.insert(sys.encoded(&ns)) {
                        frontier.push(ns);
                    }
                }
            }
            seen.len()
        };
        let explore_closure = {
            let mut seen = HashSet::new();
            let mut frontier = vec![closure.initial()];
            seen.insert(closure.encoded(&closure.initial()));
            while let Some(s) = frontier.pop() {
                let mut out = Vec::new();
                closure.successors(&s, &mut out).unwrap();
                for (_, ns) in out {
                    if seen.insert(closure.encoded(&ns)) {
                        frontier.push(ns);
                    }
                }
            }
            seen.len()
        };
        assert_eq!(explore_base, explore_closure);
    }

    #[test]
    fn closure_budget_one_stays_safe_and_recoverable() {
        use std::collections::HashSet;
        let spec = token_spec();
        let refined = refine(&spec, &RefineOptions::default()).unwrap();
        let sys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
        let closure = FaultClosure::new(sys, 1);
        let mut seen = HashSet::new();
        let mut frontier = vec![closure.initial()];
        seen.insert(closure.encoded(&closure.initial()));
        let mut fault_transitions = 0u64;
        while let Some(s) = frontier.pop() {
            let mut out = Vec::new();
            closure.successors(&s, &mut out).expect("no runtime failure under one fault");
            assert!(
                !out.is_empty() || s.base.in_flight() == 0,
                "wedged state with messages in flight"
            );
            for (l, ns) in out {
                if l.kind == LabelKind::Fault {
                    fault_transitions += 1;
                }
                if seen.insert(closure.encoded(&ns)) {
                    frontier.push(ns);
                }
            }
        }
        assert!(fault_transitions > 0, "budget 1 must generate fault transitions");
    }
}
