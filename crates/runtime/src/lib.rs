//! # ccr-runtime — executable semantics for rendezvous and refined protocols
//!
//! This crate gives operational meaning to the two levels of the paper:
//!
//! * [`rendezvous::RendezvousSystem`] — the *atomic-transaction* view: a
//!   rendezvous is a single global step synchronizing the home node with one
//!   remote.
//! * [`asynch::AsyncSystem`] — the *asynchronous* view produced by
//!   refinement: requests, acks and nacks travel over reliable in-order
//!   point-to-point links; the home owns a bounded buffer with the reserved
//!   **progress** and **ack** slots of paper §3.2; transient states absorb
//!   unexpected messages; nacked requests are retransmitted.
//!
//! Both implement the [`system::TransitionSystem`] trait consumed by the
//! `ccr-mc` model checker and by the simulators in this crate:
//!
//! * [`sim::Simulator`] — long-run random/round-robin simulation with
//!   message accounting, used by the DSM workload harness;
//! * [`abstraction::abs`] — the paper's §4 abstraction function mapping an
//!   asynchronous configuration to the rendezvous configuration it
//!   implements, the basis of the Equation 1 soundness check.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod abstraction;
pub mod asynch;
pub mod error;
pub mod faults;
pub mod observe;
pub mod rendezvous;
pub mod sched;
pub mod sim;
pub mod stats;
pub mod system;
pub mod wire;

pub use error::{Result, RuntimeError};
pub use faults::{FaultClosure, FaultHarness, FaultState};
pub use observe::emit_label_events;
pub use system::{EncodeBuf, Label, LabelKind, SentMsg, TransitionSystem};
