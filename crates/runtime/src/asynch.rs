//! Asynchronous semantics of a refined protocol (paper §3, Tables 1 and 2).
//!
//! A global configuration holds, per process, the control state (a
//! communication/internal state or a *transient* state recorded as
//! `Awaiting`), the variable environment, and the buffers of the refinement:
//!
//! * each **remote** owns a one-slot buffer for a pending home request
//!   (Table 1);
//! * the **home** owns a bounded buffer of `k >= 2` messages with the
//!   reservation discipline of §3.2 — the last free slot (the *progress
//!   buffer*) only accepts requests that can complete a rendezvous in the
//!   current communication state, and while the home waits in a transient
//!   state one further slot (the *ack buffer*) is reserved for the awaited
//!   remote's response;
//! * messages travel on reliable in-order point-to-point [`crate::wire::Link`]s.
//!
//! Every row of the paper's two tables corresponds to a labelled transition
//! here; labels carry the row name (`"C1"`, `"T3"`, ...) for traces.

use crate::error::{Result, RuntimeError};
use crate::system::{Label, LabelKind, SentMsg, TransitionSystem};
use crate::wire::{Link, Wire};
use ccr_core::expr::EvalCtx;
use ccr_core::ids::{MsgType, ProcessId, RemoteId, StateId};
use ccr_core::process::{Branch, CommAction, Peer, ProtocolSpec, StateKind};
use ccr_core::refine::RefinedProtocol;
use ccr_core::value::{Env, Value};

/// Execution parameters of the asynchronous semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsyncConfig {
    /// Home buffer capacity `k` (paper §3.2 requires `k >= 2`).
    pub home_buffer: usize,
    /// Per-link capacity bound standing in for the paper's infinite
    /// network buffering; exceeding it is a checked error, not silent loss.
    pub link_capacity: usize,
    /// Extra home-buffer slots available *only* to unacknowledged messages
    /// (the hand-written baseline's `LR`); irrelevant for derived protocols.
    pub unacked_allowance: usize,
    /// Hand-baseline mode: a buffered home request that matches no guard of
    /// the remote's current state is silently dropped instead of nacked
    /// (the stale-`inv` race of the Avalanche hand design).
    pub drop_unmatched: bool,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        Self { home_buffer: 2, link_capacity: 4, unacked_allowance: 0, drop_unmatched: false }
    }
}

impl AsyncConfig {
    /// Config with a given home buffer capacity.
    pub fn with_home_buffer(k: usize) -> Self {
        Self { home_buffer: k, ..Self::default() }
    }
}

/// A request parked in the home buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufEntry {
    /// Sender.
    pub from: RemoteId,
    /// Requested message type.
    pub msg: MsgType,
    /// Payload.
    pub val: Option<Value>,
}

/// Control phase of the home node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HomePhase {
    /// At a communication or internal state of the spec.
    At(StateId),
    /// In the transient state for output branch `branch` of `state`,
    /// awaiting an ack/nack (or optimized reply) from `target`.
    Awaiting {
        /// Origin communication state.
        state: StateId,
        /// Output branch index requested.
        branch: u32,
        /// The remote the request was sent to.
        target: RemoteId,
    },
}

/// Home node slice of the configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HomeState {
    /// Control phase.
    pub phase: HomePhase,
    /// Variables.
    pub env: Env,
    /// Parked requests (bounded by `home_buffer` plus the unacked
    /// allowance).
    pub buf: Vec<BufEntry>,
    /// Output-guard retry cursor (Table 2 row T2: after a nack, try the
    /// *next* output guard; wrap around).
    pub cursor: u32,
}

/// Control phase of a remote node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemotePhase {
    /// At a spec state.
    At(StateId),
    /// In the transient state for the output branch of `state`, awaiting an
    /// ack/nack (or the optimized reply) from home.
    Awaiting {
        /// Origin communication state.
        state: StateId,
        /// Output branch index.
        branch: u32,
    },
}

/// Remote node slice of the configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteState {
    /// Control phase.
    pub phase: RemotePhase,
    /// Variables.
    pub env: Env,
    /// The one-slot buffer for a pending home request (Table 1).
    pub buf: Option<(MsgType, Option<Value>)>,
}

/// A global asynchronous configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsyncState {
    /// The home node.
    pub home: HomeState,
    /// The remotes, indexed by [`RemoteId`].
    pub remotes: Vec<RemoteState>,
    /// Links remote `i` → home.
    pub to_home: Vec<Link>,
    /// Links home → remote `i`.
    pub to_remote: Vec<Link>,
}

impl AsyncState {
    /// Number of remotes.
    pub fn n(&self) -> usize {
        self.remotes.len()
    }

    /// Total number of in-flight wire messages.
    pub fn in_flight(&self) -> usize {
        self.to_home.iter().map(Link::len).sum::<usize>()
            + self.to_remote.iter().map(Link::len).sum::<usize>()
    }
}

/// The asynchronous transition system of a refined protocol over `n`
/// remotes.
#[derive(Debug, Clone)]
pub struct AsyncSystem<'a> {
    refined: &'a RefinedProtocol,
    n: u32,
    config: AsyncConfig,
}

impl<'a> AsyncSystem<'a> {
    /// Creates the system. Panics if `config.home_buffer < 2` (§3.2).
    pub fn new(refined: &'a RefinedProtocol, n: u32, config: AsyncConfig) -> Self {
        assert!(config.home_buffer >= 2, "the home buffer must hold at least 2 messages (§3.2)");
        Self { refined, n, config }
    }

    /// The refined protocol being executed.
    pub fn refined(&self) -> &'a RefinedProtocol {
        self.refined
    }

    /// The underlying rendezvous spec.
    pub fn spec(&self) -> &'a ProtocolSpec {
        &self.refined.spec
    }

    /// Number of remotes.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The configuration parameters.
    pub fn config(&self) -> &AsyncConfig {
        &self.config
    }

    fn eval_err(who: ProcessId) -> impl Fn(ccr_core::CoreError) -> RuntimeError {
        move |source| RuntimeError::Eval { who, source }
    }

    fn guard_ok(
        guard: &Option<ccr_core::expr::Expr>,
        ctx: EvalCtx<'_>,
        who: ProcessId,
    ) -> Result<bool> {
        match guard {
            None => Ok(true),
            Some(g) => g.eval_bool(ctx).map_err(Self::eval_err(who)),
        }
    }

    fn apply_assigns(
        br: &Branch,
        env: &mut Env,
        self_id: Option<RemoteId>,
        who: ProcessId,
    ) -> Result<()> {
        for (v, e) in &br.assigns {
            let val = e.eval(EvalCtx { env, self_id }).map_err(Self::eval_err(who))?;
            env.set(v.index(), val);
        }
        Ok(())
    }

    fn push_link(&self, link: &mut Link, w: Wire, from: ProcessId, to: ProcessId) -> Result<()> {
        if link.len() >= self.config.link_capacity {
            return Err(RuntimeError::LinkOverflow { from, to });
        }
        link.push(w);
        Ok(())
    }

    fn home_branch(&self, state: StateId, branch: u32) -> Result<&'a Branch> {
        self.spec()
            .home
            .state(state)
            .and_then(|s| s.branches.get(branch as usize))
            .ok_or(RuntimeError::BadState { who: ProcessId::Home })
    }

    fn remote_branch(&self, i: RemoteId, state: StateId, branch: u32) -> Result<&'a Branch> {
        self.spec()
            .remote
            .state(state)
            .and_then(|s| s.branches.get(branch as usize))
            .ok_or(RuntimeError::BadState { who: ProcessId::Remote(i) })
    }

    /// Whether home `Recv` branch `hb` accepts a request `(from, msg)` in
    /// environment `env` (peer pattern, message type and guard).
    fn home_recv_matches(
        &self,
        env: &Env,
        hb: &Branch,
        from: RemoteId,
        msg: MsgType,
    ) -> Result<bool> {
        let ctx = EvalCtx { env, self_id: None };
        let (peer, m) = match &hb.action {
            CommAction::Recv { from: p, msg: m, .. } => (p, *m),
            _ => return Ok(false),
        };
        if m != msg || !Self::guard_ok(&hb.guard, ctx, ProcessId::Home)? {
            return Ok(false);
        }
        match peer {
            Peer::AnyRemote { .. } => Ok(true),
            Peer::Remote(e) => {
                let t = e.eval_node(ctx).map_err(Self::eval_err(ProcessId::Home))?;
                Ok(t == from)
            }
            Peer::Home => Ok(false),
        }
    }

    /// Whether a specific request could complete a rendezvous at `state` —
    /// the progress-buffer admission test (Table 2 row T5 condition (d)).
    fn request_satisfies(
        &self,
        s: &AsyncState,
        state: StateId,
        from: RemoteId,
        msg: MsgType,
    ) -> Result<bool> {
        let st = match self.spec().home.state(state) {
            Some(st) if st.kind == StateKind::Communication => st,
            _ => return Ok(false),
        };
        for (_, hb) in st.recvs() {
            if self.home_recv_matches(&s.home.env, hb, from, msg)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Completes a home-passive rendezvous: consume buffered entry `idx`
    /// through `Recv` branch `hb`, emitting an ack unless the message is
    /// consumed silently (request/reply-optimized or unacked).
    fn home_consume(
        &self,
        next: &mut AsyncState,
        idx: usize,
        hb: &Branch,
    ) -> Result<Option<SentMsg>> {
        let entry = next.home.buf.remove(idx);
        let mut sent = None;
        if !self.refined.home_noack.contains(&entry.msg) {
            let to = ProcessId::Remote(entry.from);
            self.push_link(
                &mut next.to_remote[entry.from.index()],
                Wire::Ack,
                ProcessId::Home,
                to,
            )?;
            sent = Some(SentMsg::ack(ProcessId::Home, to));
        }
        if let CommAction::Recv { from, bind, .. } = &hb.action {
            if let Peer::AnyRemote { bind: Some(v) } = from {
                next.home.env.set(v.index(), Value::Node(entry.from));
            }
            if let (Some(v), Some(val)) = (bind, entry.val) {
                next.home.env.set(v.index(), val);
            }
        }
        Self::apply_assigns(hb, &mut next.home.env, None, ProcessId::Home)?;
        next.home.phase = HomePhase::At(hb.target);
        next.home.cursor = 0;
        Ok(sent)
    }

    /// Admission decision for a request arriving at the home (Table 2 rows
    /// T4/T5/T6 and the analogous rule outside transient states).
    fn home_admit(&self, s: &AsyncState, from: RemoteId, msg: MsgType) -> Result<Admission> {
        // Unacknowledged messages (hand baseline) must always be sunk.
        if self.refined.unacked.contains(&msg) {
            let cap = self.config.home_buffer + self.config.unacked_allowance;
            if s.home.buf.len() >= cap {
                return Err(RuntimeError::UnackedFlood);
            }
            return Ok(Admission::Accept("buf"));
        }
        if s.home.buf.iter().any(|e| e.from == from && !self.refined.unacked.contains(&e.msg)) {
            return Err(RuntimeError::DuplicateRequest { from });
        }
        let (comm_state, reserved) = match s.home.phase {
            HomePhase::At(st) => (st, 0usize),
            HomePhase::Awaiting { state, .. } => (state, 1usize),
        };
        let used = s.home.buf.len() + reserved;
        let free = self.config.home_buffer.saturating_sub(used);
        if free >= 2 {
            return Ok(Admission::Accept("T4"));
        }
        if free == 1 && self.request_satisfies(s, comm_state, from, msg)? {
            return Ok(Admission::Accept("T5"));
        }
        Ok(Admission::Nack)
    }

    /// Generates the delivery transition for the head of `to_home[i]`.
    fn deliver_to_home(
        &self,
        s: &AsyncState,
        i: usize,
        out: &mut Vec<(Label, AsyncState)>,
    ) -> Result<()> {
        let head = match s.to_home[i].head() {
            Some(w) => *w,
            None => return Ok(()),
        };
        let rid = RemoteId(i as u32);
        let actor = ProcessId::Home;
        match head {
            Wire::Ack => {
                let (state, branch, target) = match s.home.phase {
                    HomePhase::Awaiting { state, branch, target } if target == rid => {
                        (state, branch, target)
                    }
                    _ => return Err(RuntimeError::UnexpectedResponse { who: actor, what: "ack" }),
                };
                let _ = target;
                let hb = self.home_branch(state, branch)?;
                let msg = hb.action.msg().ok_or(RuntimeError::BadState { who: actor })?;
                let mut next = s.clone();
                next.to_home[i].pop();
                Self::apply_assigns(hb, &mut next.home.env, None, actor)?;
                next.home.phase = HomePhase::At(hb.target);
                next.home.cursor = 0;
                out.push((
                    Label::new(actor, LabelKind::Complete, "T1")
                        .completing(actor, msg)
                        .receiving(SentMsg::ack(ProcessId::Remote(rid), actor)),
                    next,
                ));
            }
            Wire::Nack => {
                let (state, branch) = match s.home.phase {
                    HomePhase::Awaiting { state, branch, target } if target == rid => {
                        (state, branch)
                    }
                    _ => return Err(RuntimeError::UnexpectedResponse { who: actor, what: "nack" }),
                };
                let mut next = s.clone();
                next.to_home[i].pop();
                next.home.phase = HomePhase::At(state);
                next.home.cursor = branch + 1;
                out.push((
                    Label::new(actor, LabelKind::Deliver, "T2")
                        .receiving(SentMsg::nack(ProcessId::Remote(rid), actor)),
                    next,
                ));
            }
            Wire::Req { msg, val } => {
                if let HomePhase::Awaiting { state, branch, target } = s.home.phase {
                    if target == rid {
                        let key = (state, branch);
                        if self.refined.home_reply.get(&key) == Some(&msg) {
                            // Optimized reply: completes our request and the
                            // follow-up input in one delivery.
                            let hb = self.home_branch(state, branch)?;
                            let reqmsg =
                                hb.action.msg().ok_or(RuntimeError::BadState { who: actor })?;
                            let mut next = s.clone();
                            next.to_home[i].pop();
                            Self::apply_assigns(hb, &mut next.home.env, None, actor)?;
                            let mid = hb.target;
                            // Consume the reply input at the intermediate state.
                            let mid_st = self
                                .spec()
                                .home
                                .state(mid)
                                .ok_or(RuntimeError::BadState { who: actor })?;
                            let mut landed = false;
                            for (_, rb) in mid_st.recvs() {
                                if self.home_recv_matches(&next.home.env, rb, rid, msg)? {
                                    if let CommAction::Recv { from, bind, .. } = &rb.action {
                                        if let Peer::AnyRemote { bind: Some(v) } = from {
                                            next.home.env.set(v.index(), Value::Node(rid));
                                        }
                                        if let (Some(v), Some(value)) = (bind, val) {
                                            next.home.env.set(v.index(), value);
                                        }
                                    }
                                    Self::apply_assigns(rb, &mut next.home.env, None, actor)?;
                                    next.home.phase = HomePhase::At(rb.target);
                                    next.home.cursor = 0;
                                    landed = true;
                                    break;
                                }
                            }
                            if !landed {
                                return Err(RuntimeError::ReplyNotAwaited { who: actor });
                            }
                            out.push((
                                Label::new(actor, LabelKind::Complete, "T1/reply")
                                    .completing(actor, reqmsg)
                                    .receiving(SentMsg::req(ProcessId::Remote(rid), actor, msg)),
                                next,
                            ));
                            return Ok(());
                        }
                        // Implicit nack (rule R3 / Table 2 row T3): revert to
                        // the communication state and park the request in the
                        // reserved ack-buffer slot.
                        let mut next = s.clone();
                        next.to_home[i].pop();
                        if next.home.buf.len()
                            >= self.config.home_buffer + self.config.unacked_allowance
                        {
                            return Err(RuntimeError::HomeBufferOverflow);
                        }
                        if next
                            .home
                            .buf
                            .iter()
                            .any(|e| e.from == rid && !self.refined.unacked.contains(&e.msg))
                            && !self.refined.unacked.contains(&msg)
                        {
                            return Err(RuntimeError::DuplicateRequest { from: rid });
                        }
                        next.home.buf.push(BufEntry { from: rid, msg, val });
                        next.home.phase = HomePhase::At(state);
                        next.home.cursor = branch + 1;
                        out.push((
                            Label::new(actor, LabelKind::Deliver, "T3").receiving(SentMsg::req(
                                ProcessId::Remote(rid),
                                actor,
                                msg,
                            )),
                            next,
                        ));
                        return Ok(());
                    }
                }
                // Ordinary admission (Table 2 rows T4/T5/T6, also used
                // outside transient states).
                match self.home_admit(s, rid, msg)? {
                    Admission::Accept(rule) => {
                        let mut next = s.clone();
                        next.to_home[i].pop();
                        next.home.buf.push(BufEntry { from: rid, msg, val });
                        out.push((
                            Label::new(actor, LabelKind::Deliver, rule).receiving(SentMsg::req(
                                ProcessId::Remote(rid),
                                actor,
                                msg,
                            )),
                            next,
                        ));
                    }
                    Admission::Nack => {
                        let mut next = s.clone();
                        next.to_home[i].pop();
                        let to = ProcessId::Remote(rid);
                        self.push_link(&mut next.to_remote[i], Wire::Nack, actor, to)?;
                        out.push((
                            Label::new(actor, LabelKind::Nacked, "T6")
                                .receiving(SentMsg::req(ProcessId::Remote(rid), actor, msg))
                                .sending(SentMsg::nack(actor, to)),
                            next,
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Generates the home's spontaneous transitions (Table 2 rows C1/C2 and
    /// internal taus).
    fn home_step(&self, s: &AsyncState, out: &mut Vec<(Label, AsyncState)>) -> Result<()> {
        let st_id = match s.home.phase {
            HomePhase::At(st) => st,
            HomePhase::Awaiting { .. } => return Ok(()),
        };
        let st =
            self.spec().home.state(st_id).ok_or(RuntimeError::BadState { who: ProcessId::Home })?;
        let actor = ProcessId::Home;
        let ctx = EvalCtx { env: &s.home.env, self_id: None };

        if st.kind == StateKind::Internal {
            for br in &st.branches {
                if br.action.is_tau() && Self::guard_ok(&br.guard, ctx, actor)? {
                    let mut next = s.clone();
                    Self::apply_assigns(br, &mut next.home.env, None, actor)?;
                    next.home.phase = HomePhase::At(br.target);
                    next.home.cursor = 0;
                    out.push((Label::new(actor, LabelKind::Tau, "tau").tagged(&br.tag), next));
                }
            }
            return Ok(());
        }

        // C1: complete a rendezvous with a buffered request.
        let mut c1_found = false;
        for idx in 0..s.home.buf.len() {
            let entry = s.home.buf[idx];
            for (_, hb) in st.recvs() {
                if self.home_recv_matches(&s.home.env, hb, entry.from, entry.msg)? {
                    c1_found = true;
                    let mut next = s.clone();
                    let sent = self.home_consume(&mut next, idx, hb)?;
                    let mut label = Label::new(actor, LabelKind::Complete, "C1")
                        .completing(ProcessId::Remote(entry.from), entry.msg);
                    if let Some(m) = sent {
                        label = label.sending(m);
                    }
                    out.push((label, next));
                }
            }
        }
        if c1_found {
            return Ok(());
        }

        // C2: request a rendezvous via an output guard, cycling from the
        // cursor (Table 2 row T2's retry order).
        let nb = st.branches.len();
        for off in 0..nb {
            let idx = (s.home.cursor as usize + off) % nb;
            let br = &st.branches[idx];
            let (peer, msg, payload) = match &br.action {
                CommAction::Send { to: Peer::Remote(e), msg, payload } => (e, *msg, payload),
                _ => continue,
            };
            if !Self::guard_ok(&br.guard, ctx, actor)? {
                continue;
            }
            let t = peer.eval_node(ctx).map_err(Self::eval_err(actor))?;
            if t.0 >= self.n {
                return Err(RuntimeError::BadState { who: actor });
            }
            let val = match payload {
                Some(e) => Some(e.eval(ctx).map_err(Self::eval_err(actor))?),
                None => None,
            };
            let key = (st_id, idx as u32);
            if self.refined.home_fire_forget.contains(&key) {
                // Optimized reply send: guaranteed accepted; complete now.
                let mut next = s.clone();
                let to = ProcessId::Remote(t);
                self.push_link(&mut next.to_remote[t.index()], Wire::Req { msg, val }, actor, to)?;
                Self::apply_assigns(br, &mut next.home.env, None, actor)?;
                next.home.phase = HomePhase::At(br.target);
                next.home.cursor = 0;
                out.push((
                    Label::new(actor, LabelKind::Complete, "C2/reply")
                        .completing(actor, msg)
                        .sending(SentMsg::req(actor, to, msg))
                        .tagged(&br.tag),
                    next,
                ));
                return Ok(());
            }
            // Condition (c): skip remotes with a pending (ordinary) request —
            // they are blocked as active parties and cannot accept ours.
            if s.home.buf.iter().any(|e| e.from == t && !self.refined.unacked.contains(&e.msg)) {
                continue;
            }
            let mut next = s.clone();
            let mut label = Label::new(actor, LabelKind::Request, "C2").tagged(&br.tag);
            // Reserve the ack buffer, nacking the oldest ordinary request if
            // the buffer is full.
            let ordinary = |e: &BufEntry| !self.refined.unacked.contains(&e.msg);
            if next.home.buf.iter().filter(|e| ordinary(e)).count() >= self.config.home_buffer {
                if let Some(victim_idx) = next.home.buf.iter().position(ordinary) {
                    let victim = next.home.buf.remove(victim_idx);
                    let to = ProcessId::Remote(victim.from);
                    self.push_link(
                        &mut next.to_remote[victim.from.index()],
                        Wire::Nack,
                        actor,
                        to,
                    )?;
                    label = label.sending(SentMsg::nack(actor, to));
                }
            }
            let to = ProcessId::Remote(t);
            self.push_link(&mut next.to_remote[t.index()], Wire::Req { msg, val }, actor, to)?;
            next.home.phase = HomePhase::Awaiting { state: st_id, branch: idx as u32, target: t };
            out.push((label.sending(SentMsg::req(actor, to, msg)), next));
            return Ok(());
        }
        Ok(())
    }

    /// Generates the delivery transition for the head of `to_remote[i]`.
    fn deliver_to_remote(
        &self,
        s: &AsyncState,
        i: usize,
        out: &mut Vec<(Label, AsyncState)>,
    ) -> Result<()> {
        let head = match s.to_remote[i].head() {
            Some(w) => *w,
            None => return Ok(()),
        };
        let rid = RemoteId(i as u32);
        let actor = ProcessId::Remote(rid);
        match head {
            Wire::Ack => {
                let (state, branch) = match s.remotes[i].phase {
                    RemotePhase::Awaiting { state, branch } => (state, branch),
                    _ => return Err(RuntimeError::UnexpectedResponse { who: actor, what: "ack" }),
                };
                let rb = self.remote_branch(rid, state, branch)?;
                let msg = rb.action.msg().ok_or(RuntimeError::BadState { who: actor })?;
                let mut next = s.clone();
                next.to_remote[i].pop();
                Self::apply_assigns(rb, &mut next.remotes[i].env, Some(rid), actor)?;
                next.remotes[i].phase = RemotePhase::At(rb.target);
                out.push((
                    Label::new(actor, LabelKind::Complete, "T1")
                        .completing(actor, msg)
                        .receiving(SentMsg::ack(ProcessId::Home, actor)),
                    next,
                ));
            }
            Wire::Nack => {
                let state = match s.remotes[i].phase {
                    RemotePhase::Awaiting { state, .. } => state,
                    _ => return Err(RuntimeError::UnexpectedResponse { who: actor, what: "nack" }),
                };
                let mut next = s.clone();
                next.to_remote[i].pop();
                next.remotes[i].phase = RemotePhase::At(state);
                out.push((
                    Label::new(actor, LabelKind::Deliver, "T2")
                        .receiving(SentMsg::nack(ProcessId::Home, actor)),
                    next,
                ));
            }
            Wire::Req { msg, val } => {
                match s.remotes[i].phase {
                    RemotePhase::Awaiting { state, branch } => {
                        let key = (state, branch);
                        if self.refined.remote_reply.get(&key) == Some(&msg) {
                            // Optimized reply: complete the request and the
                            // follow-up input atomically.
                            let rb = self.remote_branch(rid, state, branch)?;
                            let reqmsg =
                                rb.action.msg().ok_or(RuntimeError::BadState { who: actor })?;
                            let mut next = s.clone();
                            next.to_remote[i].pop();
                            Self::apply_assigns(rb, &mut next.remotes[i].env, Some(rid), actor)?;
                            let mid = rb.target;
                            let mid_st = self
                                .spec()
                                .remote
                                .state(mid)
                                .ok_or(RuntimeError::BadState { who: actor })?;
                            let mut landed = false;
                            for (_, fb) in mid_st.recvs() {
                                if let CommAction::Recv { from: Peer::Home, msg: m, bind } =
                                    &fb.action
                                {
                                    if *m == msg {
                                        if let (Some(v), Some(value)) = (bind, val) {
                                            next.remotes[i].env.set(v.index(), value);
                                        }
                                        Self::apply_assigns(
                                            fb,
                                            &mut next.remotes[i].env,
                                            Some(rid),
                                            actor,
                                        )?;
                                        next.remotes[i].phase = RemotePhase::At(fb.target);
                                        landed = true;
                                        break;
                                    }
                                }
                            }
                            if !landed {
                                return Err(RuntimeError::ReplyNotAwaited { who: actor });
                            }
                            out.push((
                                Label::new(actor, LabelKind::Complete, "T1/reply")
                                    .completing(actor, reqmsg)
                                    .receiving(SentMsg::req(ProcessId::Home, actor, msg)),
                                next,
                            ));
                        } else {
                            // Table 1 row T3: ignore.
                            let mut next = s.clone();
                            next.to_remote[i].pop();
                            out.push((
                                Label::new(actor, LabelKind::Deliver, "T3")
                                    .receiving(SentMsg::req(ProcessId::Home, actor, msg)),
                                next,
                            ));
                        }
                    }
                    RemotePhase::At(_) => {
                        if s.remotes[i].buf.is_none() {
                            let mut next = s.clone();
                            next.to_remote[i].pop();
                            next.remotes[i].buf = Some((msg, val));
                            out.push((
                                Label::new(actor, LabelKind::Deliver, "buf")
                                    .receiving(SentMsg::req(ProcessId::Home, actor, msg)),
                                next,
                            ));
                        }
                        // Buffer occupied: the message waits on the link.
                    }
                }
            }
        }
        Ok(())
    }

    /// Generates remote `i`'s spontaneous transitions (Table 1 rows C1–C3
    /// plus taus).
    fn remote_step(
        &self,
        s: &AsyncState,
        i: usize,
        out: &mut Vec<(Label, AsyncState)>,
    ) -> Result<()> {
        let st_id = match s.remotes[i].phase {
            RemotePhase::At(st) => st,
            RemotePhase::Awaiting { .. } => return Ok(()),
        };
        let rid = RemoteId(i as u32);
        let actor = ProcessId::Remote(rid);
        let st = self.spec().remote.state(st_id).ok_or(RuntimeError::BadState { who: actor })?;
        let ctx = EvalCtx { env: &s.remotes[i].env, self_id: Some(rid) };

        // Tau branches (autonomous decisions; allowed alongside inputs).
        for br in &st.branches {
            if br.action.is_tau() && Self::guard_ok(&br.guard, ctx, actor)? {
                let mut next = s.clone();
                Self::apply_assigns(br, &mut next.remotes[i].env, Some(rid), actor)?;
                next.remotes[i].phase = RemotePhase::At(br.target);
                out.push((Label::new(actor, LabelKind::Tau, "tau").tagged(&br.tag), next));
            }
        }
        if st.kind == StateKind::Internal {
            return Ok(());
        }

        if let Some((bidx, br)) = st.sends().next() {
            // Active state (C1/C2): send the request; a buffered home
            // request, if any, is deleted (the home will treat our request
            // as an implicit nack of its own).
            if Self::guard_ok(&br.guard, ctx, actor)? {
                let (msg, payload) = match &br.action {
                    CommAction::Send { msg, payload, .. } => (*msg, payload),
                    _ => unreachable!("sends() yields Send branches"),
                };
                let val = match payload {
                    Some(e) => Some(e.eval(ctx).map_err(Self::eval_err(actor))?),
                    None => None,
                };
                let rule = if s.remotes[i].buf.is_some() { "C2" } else { "C1" };
                let mut next = s.clone();
                next.remotes[i].buf = None;
                let to = ProcessId::Home;
                self.push_link(&mut next.to_home[i], Wire::Req { msg, val }, actor, to)?;
                let key = (st_id, bidx);
                let label;
                if self.refined.remote_fire_forget.contains(&key) {
                    // Unacknowledged send (hand baseline): proceed at once.
                    Self::apply_assigns(br, &mut next.remotes[i].env, Some(rid), actor)?;
                    next.remotes[i].phase = RemotePhase::At(br.target);
                    label = Label::new(actor, LabelKind::Complete, "C1/unacked")
                        .completing(actor, msg)
                        .sending(SentMsg::req(actor, to, msg))
                        .tagged(&br.tag);
                } else {
                    next.remotes[i].phase = RemotePhase::Awaiting { state: st_id, branch: bidx };
                    label = Label::new(actor, LabelKind::Request, rule)
                        .sending(SentMsg::req(actor, to, msg))
                        .tagged(&br.tag);
                }
                out.push((label, next));
            }
            return Ok(());
        }

        // Passive state (C3): serve the buffered home request.
        if let Some((msg, val)) = s.remotes[i].buf {
            let mut matched = false;
            for (_, rb) in st.recvs() {
                let ok = match &rb.action {
                    CommAction::Recv { from: Peer::Home, msg: m, .. } => *m == msg,
                    _ => false,
                };
                if !ok || !Self::guard_ok(&rb.guard, ctx, actor)? {
                    continue;
                }
                matched = true;
                let mut next = s.clone();
                next.remotes[i].buf = None;
                let mut label = Label::new(actor, LabelKind::Complete, "C3")
                    .completing(ProcessId::Home, msg)
                    .tagged(&rb.tag);
                if !self.refined.remote_noack.contains(&msg) {
                    let to = ProcessId::Home;
                    self.push_link(&mut next.to_home[i], Wire::Ack, actor, to)?;
                    label = label.sending(SentMsg::ack(actor, to));
                }
                if let CommAction::Recv { bind: Some(v), .. } = &rb.action {
                    if let Some(value) = val {
                        next.remotes[i].env.set(v.index(), value);
                    }
                }
                Self::apply_assigns(rb, &mut next.remotes[i].env, Some(rid), actor)?;
                next.remotes[i].phase = RemotePhase::At(rb.target);
                out.push((label, next));
            }
            if !matched {
                let mut next = s.clone();
                next.remotes[i].buf = None;
                if self.config.drop_unmatched {
                    out.push((Label::new(actor, LabelKind::Deliver, "C3/drop"), next));
                } else {
                    let to = ProcessId::Home;
                    self.push_link(&mut next.to_home[i], Wire::Nack, actor, to)?;
                    out.push((
                        Label::new(actor, LabelKind::Nacked, "C3/nack")
                            .sending(SentMsg::nack(actor, to)),
                        next,
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Outcome of the home's buffer-admission decision.
enum Admission {
    Accept(&'static str),
    Nack,
}

impl<'a> TransitionSystem for AsyncSystem<'a> {
    type State = AsyncState;

    fn initial(&self) -> AsyncState {
        AsyncState {
            home: HomeState {
                phase: HomePhase::At(self.spec().home.initial),
                env: self.spec().home.initial_env(),
                buf: Vec::new(),
                cursor: 0,
            },
            remotes: (0..self.n)
                .map(|_| RemoteState {
                    phase: RemotePhase::At(self.spec().remote.initial),
                    env: self.spec().remote.initial_env(),
                    buf: None,
                })
                .collect(),
            to_home: (0..self.n).map(|_| Link::new()).collect(),
            to_remote: (0..self.n).map(|_| Link::new()).collect(),
        }
    }

    fn successors(&self, s: &AsyncState, out: &mut Vec<(Label, AsyncState)>) -> Result<()> {
        out.clear();
        self.home_step(s, out)?;
        for i in 0..s.remotes.len() {
            self.deliver_to_home(s, i, out)?;
            self.deliver_to_remote(s, i, out)?;
            self.remote_step(s, i, out)?;
        }
        Ok(())
    }

    fn link_occupancy(&self, s: &AsyncState, from: ProcessId, to: ProcessId) -> Option<u32> {
        match (from, to) {
            (ProcessId::Remote(r), ProcessId::Home) => {
                s.to_home.get(r.index()).map(|l| l.len() as u32)
            }
            (ProcessId::Home, ProcessId::Remote(r)) => {
                s.to_remote.get(r.index()).map(|l| l.len() as u32)
            }
            _ => None,
        }
    }

    fn home_buffer_occupancy(&self, s: &AsyncState) -> Option<(u32, u32)> {
        let cap = self.config.home_buffer + self.config.unacked_allowance;
        Some((s.home.buf.len() as u32, cap as u32))
    }

    fn msg_name(&self, m: MsgType) -> String {
        self.refined.spec.msg_name(m).to_string()
    }

    fn encode(&self, s: &AsyncState, out: &mut Vec<u8>) {
        out.clear();
        match s.home.phase {
            HomePhase::At(st) => {
                out.push(0);
                out.extend_from_slice(&(st.0 as u16).to_le_bytes());
            }
            HomePhase::Awaiting { state, branch, target } => {
                out.push(1);
                out.extend_from_slice(&(state.0 as u16).to_le_bytes());
                out.push(branch as u8);
                out.extend_from_slice(&(target.0 as u16).to_le_bytes());
            }
        }
        s.home.env.encode(out);
        out.push(s.home.cursor as u8);
        out.push(s.home.buf.len() as u8);
        for e in &s.home.buf {
            out.extend_from_slice(&(e.from.0 as u16).to_le_bytes());
            out.push(e.msg.0 as u8);
            match e.val {
                Some(v) => {
                    out.push(1);
                    v.encode(out);
                }
                None => out.push(0),
            }
        }
        for (i, r) in s.remotes.iter().enumerate() {
            match r.phase {
                RemotePhase::At(st) => {
                    out.push(0);
                    out.extend_from_slice(&(st.0 as u16).to_le_bytes());
                }
                RemotePhase::Awaiting { state, branch } => {
                    out.push(1);
                    out.extend_from_slice(&(state.0 as u16).to_le_bytes());
                    out.push(branch as u8);
                }
            }
            r.env.encode(out);
            match &r.buf {
                Some((m, v)) => {
                    out.push(1);
                    out.push(m.0 as u8);
                    match v {
                        Some(v) => {
                            out.push(1);
                            v.encode(out);
                        }
                        None => out.push(0),
                    }
                }
                None => out.push(0),
            }
            s.to_home[i].encode(out);
            s.to_remote[i].encode(out);
        }
    }

    fn max_encoded_len(&self) -> Option<usize> {
        let home_vars = self.spec().home.initial_env().len();
        let remote_vars = self.spec().remote.initial_env().len();
        let buf_cap = self.config.home_buffer + self.config.unacked_allowance;
        let link = Link::max_encoded_len(self.config.link_capacity);
        // Home: phase (≤ 6) + env + cursor + buffer length + entries,
        // each `from` u16 + msg + payload flag + payload value.
        let home =
            6 + home_vars * Value::MAX_ENCODED_LEN + 2 + buf_cap * (4 + Value::MAX_ENCODED_LEN);
        // Remote: phase (≤ 4) + env + parked message (≤ 3 + value) + the
        // two directed links.
        let remote =
            4 + remote_vars * Value::MAX_ENCODED_LEN + 3 + Value::MAX_ENCODED_LEN + 2 * link;
        Some(home + self.n as usize * remote)
    }

    fn encode_into(&self, s: &AsyncState, buf: &mut [u8]) -> usize {
        let mut pos = 0usize;
        match s.home.phase {
            HomePhase::At(st) => {
                buf[pos] = 0;
                buf[pos + 1..pos + 3].copy_from_slice(&(st.0 as u16).to_le_bytes());
                pos += 3;
            }
            HomePhase::Awaiting { state, branch, target } => {
                buf[pos] = 1;
                buf[pos + 1..pos + 3].copy_from_slice(&(state.0 as u16).to_le_bytes());
                buf[pos + 3] = branch as u8;
                buf[pos + 4..pos + 6].copy_from_slice(&(target.0 as u16).to_le_bytes());
                pos += 6;
            }
        }
        pos = s.home.env.encode_into(buf, pos);
        buf[pos] = s.home.cursor as u8;
        buf[pos + 1] = s.home.buf.len() as u8;
        pos += 2;
        for e in &s.home.buf {
            buf[pos..pos + 2].copy_from_slice(&(e.from.0 as u16).to_le_bytes());
            buf[pos + 2] = e.msg.0 as u8;
            pos += 3;
            match e.val {
                Some(v) => {
                    buf[pos] = 1;
                    pos = v.encode_into(buf, pos + 1);
                }
                None => {
                    buf[pos] = 0;
                    pos += 1;
                }
            }
        }
        for (i, r) in s.remotes.iter().enumerate() {
            match r.phase {
                RemotePhase::At(st) => {
                    buf[pos] = 0;
                    buf[pos + 1..pos + 3].copy_from_slice(&(st.0 as u16).to_le_bytes());
                    pos += 3;
                }
                RemotePhase::Awaiting { state, branch } => {
                    buf[pos] = 1;
                    buf[pos + 1..pos + 3].copy_from_slice(&(state.0 as u16).to_le_bytes());
                    buf[pos + 3] = branch as u8;
                    pos += 4;
                }
            }
            pos = r.env.encode_into(buf, pos);
            match &r.buf {
                Some((m, v)) => {
                    buf[pos] = 1;
                    buf[pos + 1] = m.0 as u8;
                    pos += 2;
                    match v {
                        Some(v) => {
                            buf[pos] = 1;
                            pos = v.encode_into(buf, pos + 1);
                        }
                        None => {
                            buf[pos] = 0;
                            pos += 1;
                        }
                    }
                }
                None => {
                    buf[pos] = 0;
                    pos += 1;
                }
            }
            pos = s.to_home[i].encode_into(buf, pos);
            pos = s.to_remote[i].encode_into(buf, pos);
        }
        pos
    }

    fn decode(&self, bytes: &[u8]) -> Option<AsyncState> {
        let home_vars = self.spec().home.initial_env().len();
        let remote_vars = self.spec().remote.initial_env().len();
        let mut off = 0usize;
        let take_u8 = |off: &mut usize| -> Option<u8> {
            let b = *bytes.get(*off)?;
            *off += 1;
            Some(b)
        };
        let take_u16 = |off: &mut usize| -> Option<u16> {
            let b: [u8; 2] = bytes.get(*off..*off + 2)?.try_into().ok()?;
            *off += 2;
            Some(u16::from_le_bytes(b))
        };
        let take_env = |off: &mut usize, n: usize| -> Option<Env> {
            let (env, used) = Env::decode(bytes.get(*off..)?, n)?;
            *off += used;
            Some(env)
        };
        let take_val = |off: &mut usize| -> Option<Option<Value>> {
            match take_u8(off)? {
                0 => Some(None),
                1 => {
                    let (v, used) = Value::decode(bytes.get(*off..)?)?;
                    *off += used;
                    Some(Some(v))
                }
                _ => None,
            }
        };
        let take_link = |off: &mut usize| -> Option<Link> {
            let (link, used) = Link::decode(bytes.get(*off..)?).ok()?;
            *off += used;
            Some(link)
        };

        let phase = match take_u8(&mut off)? {
            0 => HomePhase::At(StateId(take_u16(&mut off)? as u32)),
            1 => {
                let state = StateId(take_u16(&mut off)? as u32);
                let branch = take_u8(&mut off)? as u32;
                let target = RemoteId(take_u16(&mut off)? as u32);
                HomePhase::Awaiting { state, branch, target }
            }
            _ => return None,
        };
        let env = take_env(&mut off, home_vars)?;
        let cursor = take_u8(&mut off)? as u32;
        let buf_len = take_u8(&mut off)? as usize;
        let mut buf = Vec::with_capacity(buf_len);
        for _ in 0..buf_len {
            let from = RemoteId(take_u16(&mut off)? as u32);
            let msg = MsgType(take_u8(&mut off)? as u32);
            let val = take_val(&mut off)?;
            buf.push(BufEntry { from, msg, val });
        }
        let home = HomeState { phase, env, buf, cursor };

        let n = self.n as usize;
        let mut remotes = Vec::with_capacity(n);
        let mut to_home = Vec::with_capacity(n);
        let mut to_remote = Vec::with_capacity(n);
        for _ in 0..n {
            let phase = match take_u8(&mut off)? {
                0 => RemotePhase::At(StateId(take_u16(&mut off)? as u32)),
                1 => {
                    let state = StateId(take_u16(&mut off)? as u32);
                    let branch = take_u8(&mut off)? as u32;
                    RemotePhase::Awaiting { state, branch }
                }
                _ => return None,
            };
            let env = take_env(&mut off, remote_vars)?;
            let buf = match take_u8(&mut off)? {
                0 => None,
                1 => {
                    let msg = MsgType(take_u8(&mut off)? as u32);
                    Some((msg, take_val(&mut off)?))
                }
                _ => return None,
            };
            remotes.push(RemoteState { phase, env, buf });
            to_home.push(take_link(&mut off)?);
            to_remote.push(take_link(&mut off)?);
        }
        if off != bytes.len() {
            return None; // trailing garbage: not a canonical encoding
        }
        Some(AsyncState { home, remotes, to_home, to_remote })
    }
}
