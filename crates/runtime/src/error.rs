//! Runtime errors surfaced by the executable semantics.
//!
//! An error from the executor is always a *verification finding*: either the
//! specification is broken (e.g. a type error in an expression) or an
//! assumption of the refinement was violated (e.g. an ack arrived at a
//! process that was not waiting for one). The model checker reports the
//! offending configuration.

use ccr_core::ids::{ProcessId, RemoteId};
use std::fmt;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, RuntimeError>;

/// Errors raised while executing protocol semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// An expression failed to evaluate.
    Eval {
        /// The process evaluating.
        who: ProcessId,
        /// The underlying error.
        source: ccr_core::CoreError,
    },
    /// A control state id was out of range — corrupt spec or state.
    BadState {
        /// The process.
        who: ProcessId,
    },
    /// An ack or nack arrived at a process that was not in a transient
    /// state. The refinement should make this impossible.
    UnexpectedResponse {
        /// The receiving process.
        who: ProcessId,
        /// `"ack"` or `"nack"`.
        what: &'static str,
    },
    /// A point-to-point link exceeded its configured capacity. The paper
    /// assumes an infinitely buffered network; our configured bound stands
    /// in for it and this error proves the bound too small (it is checked,
    /// not assumed).
    LinkOverflow {
        /// Sender.
        from: ProcessId,
        /// Receiver.
        to: ProcessId,
    },
    /// The home buffer was asked to hold more than its capacity. Indicates
    /// a bookkeeping bug in the reservation discipline.
    HomeBufferOverflow,
    /// A second request from the same remote was already buffered — the
    /// one-outstanding-request discipline was violated.
    DuplicateRequest {
        /// The remote with two live requests.
        from: RemoteId,
    },
    /// A fire-and-forget reply arrived but its addressee was not waiting
    /// for it — an accepted request/reply pair was unsound.
    ReplyNotAwaited {
        /// The receiving process.
        who: ProcessId,
    },
    /// The abstraction function could not classify a configuration — the
    /// asynchronous state does not correspond to any rendezvous state.
    Unabstractable {
        /// Description of the inconsistency.
        detail: &'static str,
    },
    /// The home node's unacked-request allowance (hand-written-baseline
    /// mode) grew beyond any plausible bound.
    UnackedFlood,
    /// A byte buffer claiming to hold an encoded wire message was
    /// truncated or carried an unknown tag.
    Decode {
        /// What was wrong with the bytes.
        detail: &'static str,
        /// Offset of the offending byte in the input.
        offset: usize,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Eval { who, source } => write!(f, "{who}: evaluation error: {source}"),
            RuntimeError::BadState { who } => write!(f, "{who}: control state out of range"),
            RuntimeError::UnexpectedResponse { who, what } => {
                write!(f, "{who}: unexpected {what} outside a transient state")
            }
            RuntimeError::LinkOverflow { from, to } => {
                write!(f, "link {from}->{to} exceeded its capacity")
            }
            RuntimeError::HomeBufferOverflow => write!(f, "home buffer overflow"),
            RuntimeError::DuplicateRequest { from } => {
                write!(f, "{from} has two outstanding requests")
            }
            RuntimeError::ReplyNotAwaited { who } => {
                write!(f, "{who}: fire-and-forget reply arrived while not waiting")
            }
            RuntimeError::Unabstractable { detail } => {
                write!(f, "abstraction failed: {detail}")
            }
            RuntimeError::UnackedFlood => write!(f, "unacked-request allowance exhausted"),
            RuntimeError::Decode { detail, offset } => {
                write!(f, "wire decode failed at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Serializes as the `Display` message — JSON consumers want the
/// diagnostic text, not the structural breakdown.
impl serde::Serialize for RuntimeError {
    fn serialize(&self, s: &mut serde::Serializer) {
        s.serialize_str(&self.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let errs: Vec<RuntimeError> = vec![
            RuntimeError::Eval { who: ProcessId::Home, source: ccr_core::CoreError::DivideByZero },
            RuntimeError::BadState { who: ProcessId::Remote(RemoteId(1)) },
            RuntimeError::UnexpectedResponse { who: ProcessId::Home, what: "ack" },
            RuntimeError::LinkOverflow {
                from: ProcessId::Home,
                to: ProcessId::Remote(RemoteId(0)),
            },
            RuntimeError::HomeBufferOverflow,
            RuntimeError::DuplicateRequest { from: RemoteId(2) },
            RuntimeError::ReplyNotAwaited { who: ProcessId::Remote(RemoteId(0)) },
            RuntimeError::Unabstractable { detail: "x" },
            RuntimeError::UnackedFlood,
            RuntimeError::Decode { detail: "empty input", offset: 0 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
