//! Translating transition labels into [`TraceEvent`]s.
//!
//! One fired [`Label`] expands into up to five events sharing a step
//! index: the `Step` itself, the wire message it consumed (`Recv`, plus
//! `Retransmit` when that message was a nack), the rendezvous it
//! completed, and the wire messages it emitted (`Send`, each with the
//! post-step link occupancy when the semantics can report one). Both the
//! simulator and the model checker's counterexample export go through
//! this function so a replayed counterexample is byte-identical to a
//! live trace of the same schedule.

use crate::system::{Label, SentMsg};
use ccr_core::ids::MsgType;
use ccr_trace::{TraceEvent, TraceSink};

/// Emits the events describing one fired `label` to `sink`.
///
/// `seq` is the 0-based step index. `msg_name` resolves message types to
/// spec names (see [`crate::TransitionSystem::msg_name`]); `occupancy`
/// reports the post-step occupancy of the link a [`SentMsg`] landed on,
/// or `None` when unknown.
pub fn emit_label_events(
    sink: &mut dyn TraceSink,
    seq: u64,
    label: &Label,
    msg_name: &dyn Fn(MsgType) -> String,
    occupancy: &dyn Fn(&SentMsg) -> Option<u32>,
) {
    sink.emit(&TraceEvent::Step {
        seq,
        actor: label.actor.to_string(),
        kind: format!("{:?}", label.kind),
        rule: label.rule.to_string(),
        tag: label.tag.clone(),
    });
    if let Some(r) = &label.recv {
        sink.emit(&TraceEvent::Recv {
            seq,
            from: r.from.to_string(),
            to: r.to.to_string(),
            wire: r.wire_kind().to_string(),
            msg: r.msg.map(msg_name),
        });
        if r.is_nack {
            sink.emit(&TraceEvent::Retransmit {
                seq,
                actor: label.actor.to_string(),
                rule: label.rule.to_string(),
            });
        }
    }
    if let Some((active, msg)) = label.completes {
        sink.emit(&TraceEvent::Rendezvous { seq, actor: active.to_string(), msg: msg_name(msg) });
    }
    for m in label.emissions() {
        sink.emit(&TraceEvent::Send {
            seq,
            from: m.from.to_string(),
            to: m.to.to_string(),
            wire: m.wire_kind().to_string(),
            msg: m.msg.map(msg_name),
            occupancy: occupancy(m),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{Label, LabelKind, SentMsg};
    use ccr_core::ids::{ProcessId, RemoteId};
    use ccr_trace::RingSink;

    #[test]
    fn one_label_expands_into_its_event_set() {
        let h = ProcessId::Home;
        let r0 = ProcessId::Remote(RemoteId(0));
        let label = Label::new(h, LabelKind::Complete, "C1")
            .completing(r0, MsgType(1))
            .receiving(SentMsg::nack(r0, h))
            .sending(SentMsg::ack(h, r0));
        let mut sink = RingSink::new(16);
        emit_label_events(&mut sink, 7, &label, &|m| format!("msg{}", m.0), &|_| Some(2));
        let events = sink.into_events();
        assert_eq!(events.len(), 5, "step, recv, retransmit, rendezvous, send");
        assert!(matches!(&events[0], TraceEvent::Step { seq: 7, rule, .. } if rule == "C1"));
        assert!(matches!(&events[1], TraceEvent::Recv { wire, .. } if wire == "Nack"));
        assert!(matches!(&events[2], TraceEvent::Retransmit { .. }));
        assert!(matches!(&events[3], TraceEvent::Rendezvous { msg, .. } if msg == "msg1"));
        assert!(
            matches!(&events[4], TraceEvent::Send { wire, occupancy: Some(2), .. } if wire == "Ack")
        );
    }
}
