//! Schedulers: policies for choosing among enabled transitions.
//!
//! The refinement guarantees progress under *no fairness assumption beyond
//! weak fairness of the whole system* (§2.5), so the simulator supports an
//! adversarial spread of policies: uniformly random, rotating round-robin,
//! and a biased scheduler that can starve chosen remotes — used by the §6
//! buffer/fairness experiments.

use crate::system::Label;
use ccr_core::ids::{ProcessId, RemoteId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A scheduling policy over enabled transitions.
pub trait Scheduler {
    /// Picks the index of the transition to fire among `choices`, or `None`
    /// to halt (only meaningful for bounded policies).
    fn pick(&mut self, choices: &[Label]) -> Option<usize>;
}

/// Chooses uniformly at random (seeded, reproducible).
#[derive(Debug)]
pub struct RandomSched {
    rng: StdRng,
}

impl RandomSched {
    /// Creates a seeded random scheduler.
    pub fn new(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed) }
    }
}

impl Scheduler for RandomSched {
    fn pick(&mut self, choices: &[Label]) -> Option<usize> {
        if choices.is_empty() {
            None
        } else {
            Some(self.rng.random_range(0..choices.len()))
        }
    }
}

/// Rotates over actors: each call prefers the next process id in turn, so
/// every process gets regular opportunities.
#[derive(Debug)]
pub struct RoundRobinSched {
    n: u32,
    next: u32,
}

impl RoundRobinSched {
    /// Creates a round-robin scheduler over home + `n` remotes.
    pub fn new(n: u32) -> Self {
        Self { n, next: 0 }
    }

    fn actor_index(&self, a: ProcessId) -> u32 {
        match a {
            ProcessId::Home => 0,
            ProcessId::Remote(RemoteId(i)) => 1 + i,
        }
    }
}

impl Scheduler for RoundRobinSched {
    fn pick(&mut self, choices: &[Label]) -> Option<usize> {
        if choices.is_empty() {
            return None;
        }
        let total = self.n + 1;
        for off in 0..total {
            let want = (self.next + off) % total;
            if let Some(idx) = choices.iter().position(|l| self.actor_index(l.actor) == want) {
                self.next = (want + 1) % total;
                return Some(idx);
            }
        }
        Some(0)
    }
}

/// An adversarial scheduler that deprioritizes a set of victim remotes:
/// their transitions are only chosen when nothing else is enabled. Used to
/// demonstrate per-remote starvation under weak fairness (§6).
#[derive(Debug)]
pub struct BiasedSched {
    victims: Vec<RemoteId>,
    rng: StdRng,
}

impl BiasedSched {
    /// Creates a biased scheduler that starves `victims` when possible.
    pub fn new(victims: Vec<RemoteId>, seed: u64) -> Self {
        Self { victims, rng: StdRng::seed_from_u64(seed) }
    }

    fn is_victim(&self, a: ProcessId) -> bool {
        matches!(a, ProcessId::Remote(r) if self.victims.contains(&r))
    }
}

impl Scheduler for BiasedSched {
    fn pick(&mut self, choices: &[Label]) -> Option<usize> {
        if choices.is_empty() {
            return None;
        }
        let preferred: Vec<usize> = choices
            .iter()
            .enumerate()
            .filter(|(_, l)| !self.is_victim(l.actor))
            .map(|(i, _)| i)
            .collect();
        if preferred.is_empty() {
            Some(self.rng.random_range(0..choices.len()))
        } else {
            Some(preferred[self.rng.random_range(0..preferred.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::LabelKind;

    fn lbl(a: ProcessId) -> Label {
        Label::new(a, LabelKind::Tau, "tau")
    }

    #[test]
    fn random_sched_is_reproducible_and_in_range() {
        let choices = vec![lbl(ProcessId::Home), lbl(ProcessId::Remote(RemoteId(0)))];
        let mut a = RandomSched::new(42);
        let mut b = RandomSched::new(42);
        for _ in 0..50 {
            let x = a.pick(&choices).unwrap();
            let y = b.pick(&choices).unwrap();
            assert_eq!(x, y);
            assert!(x < choices.len());
        }
        assert_eq!(a.pick(&[]), None);
    }

    #[test]
    fn round_robin_rotates_actors() {
        let choices = vec![
            lbl(ProcessId::Home),
            lbl(ProcessId::Remote(RemoteId(0))),
            lbl(ProcessId::Remote(RemoteId(1))),
        ];
        let mut s = RoundRobinSched::new(2);
        let picks: Vec<usize> = (0..3).map(|_| s.pick(&choices).unwrap()).collect();
        assert_eq!(picks, vec![0, 1, 2]);
        // Wraps around.
        assert_eq!(s.pick(&choices), Some(0));
    }

    #[test]
    fn round_robin_skips_absent_actors() {
        let choices = vec![lbl(ProcessId::Remote(RemoteId(1)))];
        let mut s = RoundRobinSched::new(2);
        assert_eq!(s.pick(&choices), Some(0));
        assert_eq!(s.pick(&[]), None);
    }

    #[test]
    fn biased_starves_victims_when_alternatives_exist() {
        let choices =
            vec![lbl(ProcessId::Remote(RemoteId(0))), lbl(ProcessId::Remote(RemoteId(1)))];
        let mut s = BiasedSched::new(vec![RemoteId(0)], 7);
        for _ in 0..50 {
            assert_eq!(s.pick(&choices), Some(1));
        }
        // Only victim transitions available: must still pick one (weak
        // fairness of the whole system).
        let only_victim = vec![lbl(ProcessId::Remote(RemoteId(0)))];
        assert_eq!(s.pick(&only_victim), Some(0));
    }
}
