//! Synchronous (rendezvous) semantics: the atomic-transaction view.
//!
//! A global configuration is the control state and environment of the home
//! node and of every remote. A transition is either an autonomous `tau`
//! step of one process or a *rendezvous*: the simultaneous execution of a
//! matching output/input guard pair, atomically transferring the payload.

use crate::error::{Result, RuntimeError};
use crate::system::{Label, LabelKind, TransitionSystem};
use ccr_core::expr::EvalCtx;
use ccr_core::ids::{MsgType, ProcessId, RemoteId, StateId};
use ccr_core::process::{Branch, CommAction, Peer, Process, ProtocolSpec, StateKind};
use ccr_core::value::{Env, Value};

/// One process's slice of the global configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Local {
    /// Control state.
    pub state: StateId,
    /// Variable environment.
    pub env: Env,
}

/// A global rendezvous configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RvState {
    /// Home node.
    pub home: Local,
    /// Remote nodes, indexed by [`RemoteId`].
    pub remotes: Vec<Local>,
}

impl RvState {
    /// The number of remotes.
    pub fn n(&self) -> usize {
        self.remotes.len()
    }
}

/// The rendezvous transition system for a spec instantiated with `n`
/// remotes.
#[derive(Debug, Clone)]
pub struct RendezvousSystem<'a> {
    spec: &'a ProtocolSpec,
    n: u32,
}

impl<'a> RendezvousSystem<'a> {
    /// Creates the system over `n` remotes.
    pub fn new(spec: &'a ProtocolSpec, n: u32) -> Self {
        Self { spec, n }
    }

    /// The underlying spec.
    pub fn spec(&self) -> &'a ProtocolSpec {
        self.spec
    }

    /// Number of remotes.
    pub fn n(&self) -> u32 {
        self.n
    }

    fn home_state<'s>(&'s self, s: &RvState) -> Result<&'s ccr_core::process::State> {
        self.spec.home.state(s.home.state).ok_or(RuntimeError::BadState { who: ProcessId::Home })
    }

    fn remote_state<'s>(&'s self, s: &RvState, i: usize) -> Result<&'s ccr_core::process::State> {
        self.spec
            .remote
            .state(s.remotes[i].state)
            .ok_or(RuntimeError::BadState { who: ProcessId::Remote(RemoteId(i as u32)) })
    }

    /// Evaluates a guard (missing guard is `true`).
    fn guard_ok(
        guard: &Option<ccr_core::expr::Expr>,
        ctx: EvalCtx<'_>,
        who: ProcessId,
    ) -> Result<bool> {
        match guard {
            None => Ok(true),
            Some(g) => g.eval_bool(ctx).map_err(|source| RuntimeError::Eval { who, source }),
        }
    }

    fn apply_assigns(
        proc_: &Process,
        branch: &Branch,
        env: &mut Env,
        self_id: Option<RemoteId>,
        who: ProcessId,
    ) -> Result<()> {
        let _ = proc_;
        for (v, e) in &branch.assigns {
            let val = e
                .eval(EvalCtx { env, self_id })
                .map_err(|source| RuntimeError::Eval { who, source })?;
            env.set(v.index(), val);
        }
        Ok(())
    }

    /// Executes a rendezvous where the *home* is active (home `Send` branch
    /// `hb`, remote `i` `Recv` branch `rb`), producing the successor.
    fn do_home_active(&self, s: &RvState, hb: &Branch, i: usize, rb: &Branch) -> Result<RvState> {
        let mut next = s.clone();
        let hctx = EvalCtx { env: &s.home.env, self_id: None };
        let payload = match &hb.action {
            CommAction::Send { payload: Some(e), .. } => Some(
                e.eval(hctx)
                    .map_err(|source| RuntimeError::Eval { who: ProcessId::Home, source })?,
            ),
            _ => None,
        };
        // Receiver side: bind payload, run assigns, move.
        if let CommAction::Recv { bind, .. } = &rb.action {
            if let (Some(v), Some(val)) = (bind, payload) {
                next.remotes[i].env.set(v.index(), val);
            }
        }
        Self::apply_assigns(
            &self.spec.remote,
            rb,
            &mut next.remotes[i].env,
            Some(RemoteId(i as u32)),
            ProcessId::Remote(RemoteId(i as u32)),
        )?;
        next.remotes[i].state = rb.target;
        // Sender side.
        Self::apply_assigns(&self.spec.home, hb, &mut next.home.env, None, ProcessId::Home)?;
        next.home.state = hb.target;
        Ok(next)
    }

    /// Executes a rendezvous where remote `i` is active.
    fn do_remote_active(&self, s: &RvState, i: usize, rb: &Branch, hb: &Branch) -> Result<RvState> {
        let mut next = s.clone();
        let rid = RemoteId(i as u32);
        let rctx = EvalCtx { env: &s.remotes[i].env, self_id: Some(rid) };
        let payload = match &rb.action {
            CommAction::Send { payload: Some(e), .. } => Some(
                e.eval(rctx)
                    .map_err(|source| RuntimeError::Eval { who: ProcessId::Remote(rid), source })?,
            ),
            _ => None,
        };
        // Home receiver: bind sender and payload, assigns, move.
        if let CommAction::Recv { from, bind, .. } = &hb.action {
            if let Peer::AnyRemote { bind: Some(v) } = from {
                next.home.env.set(v.index(), Value::Node(rid));
            }
            if let (Some(v), Some(val)) = (bind, payload) {
                next.home.env.set(v.index(), val);
            }
        }
        Self::apply_assigns(&self.spec.home, hb, &mut next.home.env, None, ProcessId::Home)?;
        next.home.state = hb.target;
        // Remote sender.
        Self::apply_assigns(
            &self.spec.remote,
            rb,
            &mut next.remotes[i].env,
            Some(rid),
            ProcessId::Remote(rid),
        )?;
        next.remotes[i].state = rb.target;
        Ok(next)
    }

    /// Whether home `Recv` branch `hb` accepts a message `msg` from remote
    /// `i` in configuration `s` (peer pattern and guard, not binding).
    fn home_recv_matches(
        &self,
        s: &RvState,
        hb: &Branch,
        i: usize,
        msg: ccr_core::ids::MsgType,
    ) -> Result<bool> {
        let hctx = EvalCtx { env: &s.home.env, self_id: None };
        let (from, m) = match &hb.action {
            CommAction::Recv { from, msg, .. } => (from, *msg),
            _ => return Ok(false),
        };
        if m != msg {
            return Ok(false);
        }
        if !Self::guard_ok(&hb.guard, hctx, ProcessId::Home)? {
            return Ok(false);
        }
        match from {
            Peer::AnyRemote { .. } => Ok(true),
            Peer::Remote(e) => {
                let t = e
                    .eval_node(hctx)
                    .map_err(|source| RuntimeError::Eval { who: ProcessId::Home, source })?;
                Ok(t.index() == i)
            }
            Peer::Home => Ok(false),
        }
    }
}

impl<'a> TransitionSystem for RendezvousSystem<'a> {
    type State = RvState;

    fn initial(&self) -> RvState {
        RvState {
            home: Local { state: self.spec.home.initial, env: self.spec.home.initial_env() },
            remotes: (0..self.n)
                .map(|_| Local {
                    state: self.spec.remote.initial,
                    env: self.spec.remote.initial_env(),
                })
                .collect(),
        }
    }

    fn successors(&self, s: &RvState, out: &mut Vec<(Label, RvState)>) -> Result<()> {
        out.clear();
        let home_st = self.home_state(s)?;
        let hctx = EvalCtx { env: &s.home.env, self_id: None };

        // Home tau steps (internal states).
        for br in &home_st.branches {
            if br.action.is_tau() && Self::guard_ok(&br.guard, hctx, ProcessId::Home)? {
                let mut next = s.clone();
                Self::apply_assigns(
                    &self.spec.home,
                    br,
                    &mut next.home.env,
                    None,
                    ProcessId::Home,
                )?;
                next.home.state = br.target;
                out.push((Label::new(ProcessId::Home, LabelKind::Tau, "tau"), next));
            }
        }

        for i in 0..s.remotes.len() {
            let rid = RemoteId(i as u32);
            let pid = ProcessId::Remote(rid);
            let rst = self.remote_state(s, i)?;
            let rctx = EvalCtx { env: &s.remotes[i].env, self_id: Some(rid) };

            // Remote tau steps.
            for br in &rst.branches {
                if br.action.is_tau() && Self::guard_ok(&br.guard, rctx, pid)? {
                    let mut next = s.clone();
                    Self::apply_assigns(
                        &self.spec.remote,
                        br,
                        &mut next.remotes[i].env,
                        Some(rid),
                        pid,
                    )?;
                    next.remotes[i].state = br.target;
                    out.push((Label::new(pid, LabelKind::Tau, "tau"), next));
                }
            }

            if home_st.kind != StateKind::Communication || rst.kind != StateKind::Communication {
                continue;
            }

            // Home-active rendezvous with remote i.
            for (_, hb) in home_st.sends() {
                if !Self::guard_ok(&hb.guard, hctx, ProcessId::Home)? {
                    continue;
                }
                let (to, msg) = match &hb.action {
                    CommAction::Send { to: Peer::Remote(e), msg, .. } => {
                        let t = e.eval_node(hctx).map_err(|source| RuntimeError::Eval {
                            who: ProcessId::Home,
                            source,
                        })?;
                        (t, *msg)
                    }
                    _ => continue,
                };
                if to.index() != i {
                    continue;
                }
                for (_, rb) in rst.recvs() {
                    let ok = match &rb.action {
                        CommAction::Recv { from: Peer::Home, msg: m, .. } => *m == msg,
                        _ => false,
                    };
                    if !ok || !Self::guard_ok(&rb.guard, rctx, pid)? {
                        continue;
                    }
                    let next = self.do_home_active(s, hb, i, rb)?;
                    out.push((
                        Label::new(ProcessId::Home, LabelKind::Rendezvous, "rendezvous")
                            .completing(ProcessId::Home, msg),
                        next,
                    ));
                }
            }

            // Remote-active rendezvous.
            for (_, rb) in rst.sends() {
                if !Self::guard_ok(&rb.guard, rctx, pid)? {
                    continue;
                }
                let msg = match &rb.action {
                    CommAction::Send { to: Peer::Home, msg, .. } => *msg,
                    _ => continue,
                };
                for (_, hb) in home_st.recvs() {
                    if self.home_recv_matches(s, hb, i, msg)? {
                        let next = self.do_remote_active(s, i, rb, hb)?;
                        out.push((
                            Label::new(pid, LabelKind::Rendezvous, "rendezvous")
                                .completing(pid, msg),
                            next,
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    fn msg_name(&self, m: MsgType) -> String {
        self.spec.msg_name(m).to_string()
    }

    fn encode(&self, s: &RvState, out: &mut Vec<u8>) {
        out.clear();
        out.extend_from_slice(&(s.home.state.0 as u16).to_le_bytes());
        s.home.env.encode(out);
        for r in &s.remotes {
            out.extend_from_slice(&(r.state.0 as u16).to_le_bytes());
            r.env.encode(out);
        }
    }

    fn max_encoded_len(&self) -> Option<usize> {
        let home_vars = self.spec.home.initial_env().len();
        let remote_vars = self.spec.remote.initial_env().len();
        Some(
            2 + home_vars * Value::MAX_ENCODED_LEN
                + self.n as usize * (2 + remote_vars * Value::MAX_ENCODED_LEN),
        )
    }

    fn encode_into(&self, s: &RvState, buf: &mut [u8]) -> usize {
        buf[0..2].copy_from_slice(&(s.home.state.0 as u16).to_le_bytes());
        let mut pos = s.home.env.encode_into(buf, 2);
        for r in &s.remotes {
            buf[pos..pos + 2].copy_from_slice(&(r.state.0 as u16).to_le_bytes());
            pos = r.env.encode_into(buf, pos + 2);
        }
        pos
    }

    fn decode(&self, bytes: &[u8]) -> Option<RvState> {
        let home_vars = self.spec.home.initial_env().len();
        let remote_vars = self.spec.remote.initial_env().len();
        let mut off = 0;
        let take_state = |off: &mut usize| -> Option<StateId> {
            let b: [u8; 2] = bytes.get(*off..*off + 2)?.try_into().ok()?;
            *off += 2;
            Some(StateId(u16::from_le_bytes(b) as u32))
        };
        let take_env = |off: &mut usize, n: usize| -> Option<Env> {
            let (env, used) = Env::decode(bytes.get(*off..)?, n)?;
            *off += used;
            Some(env)
        };
        let home = Local { state: take_state(&mut off)?, env: take_env(&mut off, home_vars)? };
        let mut remotes = Vec::with_capacity(self.n as usize);
        for _ in 0..self.n {
            remotes.push(Local {
                state: take_state(&mut off)?,
                env: take_env(&mut off, remote_vars)?,
            });
        }
        if off != bytes.len() {
            return None; // trailing garbage: not a canonical encoding
        }
        Some(RvState { home, remotes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_core::builder::ProtocolBuilder;
    use ccr_core::expr::Expr;
    use ccr_core::value::Value;

    /// Token protocol: remote requests, home grants to the recorded owner,
    /// owner releases.
    fn token() -> ProtocolSpec {
        let mut b = ProtocolBuilder::new("token");
        let req = b.msg("req");
        let gr = b.msg("gr");
        let rel = b.msg("rel");
        let o = b.home_var("o", Value::Node(RemoteId(0)));
        let f = b.home_state("F");
        let g1 = b.home_state("G1");
        let e = b.home_state("E");
        b.home(f).recv_any(req).bind_sender(o).goto(g1);
        b.home(g1).send_to(Expr::Var(o), gr).goto(e);
        b.home(e).recv_exact(rel, Expr::Var(o)).goto(f);
        let i = b.remote_state("I");
        let w = b.remote_state("W");
        let v = b.remote_state("V");
        b.remote(i).send(req).goto(w);
        b.remote(w).recv(gr).goto(v);
        b.remote(v).send(rel).goto(i);
        b.finish().unwrap()
    }

    #[test]
    fn initial_state_shape() {
        let spec = token();
        let sys = RendezvousSystem::new(&spec, 3);
        let s0 = sys.initial();
        assert_eq!(s0.n(), 3);
        assert_eq!(s0.home.state, spec.home.initial);
    }

    #[test]
    fn initial_successors_are_req_rendezvous() {
        let spec = token();
        let sys = RendezvousSystem::new(&spec, 2);
        let s0 = sys.initial();
        let mut out = Vec::new();
        sys.successors(&s0, &mut out).unwrap();
        // Each of the two remotes can rendezvous on req with home.
        assert_eq!(out.len(), 2);
        for (l, _) in &out {
            assert_eq!(l.kind, LabelKind::Rendezvous);
            assert!(l.completes.is_some());
        }
    }

    #[test]
    fn grant_targets_the_recorded_owner() {
        let spec = token();
        let sys = RendezvousSystem::new(&spec, 2);
        let s0 = sys.initial();
        let mut out = Vec::new();
        sys.successors(&s0, &mut out).unwrap();
        // Take remote 1's request.
        let (_, s1) =
            out.iter().find(|(l, _)| l.actor == ProcessId::Remote(RemoteId(1))).cloned().unwrap();
        assert_eq!(s1.home.env.get(0), Some(Value::Node(RemoteId(1))));
        // From s1 the only rendezvous is gr to remote 1.
        sys.successors(&s1, &mut out).unwrap();
        let rendezvous: Vec<_> =
            out.iter().filter(|(l, _)| l.kind == LabelKind::Rendezvous).collect();
        assert_eq!(rendezvous.len(), 1);
        let (_, s2) = rendezvous[0].clone();
        let v = spec.remote.state_by_name("V").unwrap();
        assert_eq!(s2.remotes[1].state, v);
        let i = spec.remote.state_by_name("I").unwrap();
        assert_eq!(s2.remotes[0].state, i);
    }

    #[test]
    fn full_cycle_returns_to_initial() {
        let spec = token();
        let sys = RendezvousSystem::new(&spec, 1);
        let mut s = sys.initial();
        let init_enc = sys.encoded(&s);
        let mut out = Vec::new();
        // req, gr, rel
        for _ in 0..3 {
            sys.successors(&s, &mut out).unwrap();
            assert_eq!(out.len(), 1, "deterministic with one remote");
            s = out[0].1.clone();
        }
        assert_eq!(sys.encoded(&s), init_enc);
    }

    #[test]
    fn encoding_distinguishes_remote_order() {
        let spec = token();
        let sys = RendezvousSystem::new(&spec, 2);
        let s0 = sys.initial();
        let mut out = Vec::new();
        sys.successors(&s0, &mut out).unwrap();
        let e0 = sys.encoded(&out[0].1);
        let e1 = sys.encoded(&out[1].1);
        assert_ne!(e0, e1);
    }

    #[test]
    fn tau_guard_respected() {
        let mut b = ProtocolBuilder::new("tau");
        let m = b.msg("m");
        let h = b.home_state("H");
        b.home(h).recv_any(m).goto(h);
        let x = b.remote_var("x", Value::Int(0));
        let r = b.remote_state("R");
        let r2 = b.remote_state("R2");
        b.remote(r)
            .when(Expr::eq(Expr::Var(x), Expr::int(0)))
            .tau()
            .assign(x, Expr::int(1))
            .goto(r2);
        b.remote(r2).send(m).goto(r2);
        let spec = b.finish_unchecked().unwrap();
        let sys = RendezvousSystem::new(&spec, 1);
        let s0 = sys.initial();
        let mut out = Vec::new();
        sys.successors(&s0, &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0.kind, LabelKind::Tau);
        let s1 = out[0].1.clone();
        assert_eq!(s1.remotes[0].env.get(0), Some(Value::Int(1)));
        // Guard now false: no tau from R2... but send m is available.
        sys.successors(&s1, &mut out).unwrap();
        assert!(out.iter().all(|(l, _)| l.kind == LabelKind::Rendezvous));
    }
}
