//! The §4 abstraction function `abs`: asynchronous → rendezvous states.
//!
//! The paper defines `abs` by *undoing* partially-completed protocol
//! machinery:
//!
//! 1. every in-flight or buffered **request** is discarded and its sender
//!    reverted from the transient state back to its communication state —
//!    as though the request were never sent;
//! 2. every in-flight **ack** is consumed: the addressee advances to the
//!    state it would reach on delivery;
//! 3. every in-flight **nack** is discarded and its addressee reverted to
//!    its communication state.
//!
//! With the §3.3 optimization, a reply message is "treated as an ack"
//! (paper §4): a consumed-but-unanswered optimized request corresponds to a
//! *completed* request rendezvous, and an in-flight reply additionally
//! completes the reply rendezvous at the waiting party.
//!
//! [`abs`] returns an error when the asynchronous configuration cannot be
//! classified — which the simulation checker reports as a refinement bug.

use crate::asynch::{AsyncState, AsyncSystem, HomePhase, RemotePhase};
use crate::error::{Result, RuntimeError};
use crate::rendezvous::{Local, RvState};
use crate::wire::Wire;
use ccr_core::expr::EvalCtx;
use ccr_core::ids::{ProcessId, RemoteId};
use ccr_core::process::{Branch, CommAction, Peer};
use ccr_core::value::{Env, Value};

fn apply_assigns(
    br: &Branch,
    env: &mut Env,
    self_id: Option<RemoteId>,
    who: ProcessId,
) -> Result<()> {
    for (v, e) in &br.assigns {
        let val = e
            .eval(EvalCtx { env, self_id })
            .map_err(|source| RuntimeError::Eval { who, source })?;
        env.set(v.index(), val);
    }
    Ok(())
}

/// Maps an asynchronous configuration to the rendezvous configuration it
/// implements.
pub fn abs(sys: &AsyncSystem<'_>, s: &AsyncState) -> Result<RvState> {
    let spec = sys.spec();
    let refined = sys.refined();

    // --- Remotes -----------------------------------------------------------
    let mut remotes = Vec::with_capacity(s.remotes.len());
    for (i, r) in s.remotes.iter().enumerate() {
        let rid = RemoteId(i as u32);
        let who = ProcessId::Remote(rid);
        let local = match r.phase {
            RemotePhase::At(st) => Local { state: st, env: r.env.clone() },
            RemotePhase::Awaiting { state, branch } => {
                let br = spec
                    .remote
                    .state(state)
                    .and_then(|st| st.branches.get(branch as usize))
                    .ok_or(RuntimeError::BadState { who })?;
                let req_msg = br.action.msg().ok_or(RuntimeError::BadState { who })?;
                // Is our request still pending (in flight or parked at home)?
                let pending = s.to_home[i].any(|w| w.req_msg() == Some(req_msg))
                    || s.home.buf.iter().any(|e| e.from == rid && e.msg == req_msg);
                if pending {
                    // Rule 1: discard the request, revert to the
                    // communication state.
                    Local { state, env: r.env.clone() }
                } else if s.to_remote[i].any(|w| *w == Wire::Ack) {
                    // Rule 2: consume the ack.
                    let mut env = r.env.clone();
                    apply_assigns(br, &mut env, Some(rid), who)?;
                    Local { state: br.target, env }
                } else if s.to_remote[i].any(|w| *w == Wire::Nack) {
                    // Rule 3: discard the nack, revert.
                    Local { state, env: r.env.clone() }
                } else if let Some(&repl) = refined.remote_reply.get(&(state, branch)) {
                    // Optimized request: consumed by home. The request
                    // rendezvous completed; if the reply is already in
                    // flight it acts as an ack for the reply rendezvous too.
                    let mut env = r.env.clone();
                    apply_assigns(br, &mut env, Some(rid), who)?;
                    let mut local = Local { state: br.target, env };
                    let reply_val = s.to_remote[i].iter().find_map(|w| match w {
                        Wire::Req { msg, val } if *msg == repl => Some(*val),
                        _ => None,
                    });
                    if let Some(val) = reply_val {
                        let mid =
                            spec.remote.state(br.target).ok_or(RuntimeError::BadState { who })?;
                        let fb = mid
                            .branches
                            .iter()
                            .find(|b| {
                                matches!(&b.action, CommAction::Recv { from: Peer::Home, msg, .. } if *msg == repl)
                            })
                            .ok_or(RuntimeError::Unabstractable {
                                detail: "reply landing state lacks the reply input",
                            })?;
                        if let CommAction::Recv { bind: Some(v), .. } = &fb.action {
                            if let Some(value) = val {
                                local.env.set(v.index(), value);
                            }
                        }
                        apply_assigns(fb, &mut local.env, Some(rid), who)?;
                        local.state = fb.target;
                    }
                    local
                } else {
                    return Err(RuntimeError::Unabstractable {
                        detail: "remote transient with no request, response or reply anywhere",
                    });
                }
            }
        };
        remotes.push(local);
    }

    // --- Home ---------------------------------------------------------------
    let home = match s.home.phase {
        HomePhase::At(st) => Local { state: st, env: s.home.env.clone() },
        HomePhase::Awaiting { state, branch, target } => {
            let who = ProcessId::Home;
            let br = spec
                .home
                .state(state)
                .and_then(|st| st.branches.get(branch as usize))
                .ok_or(RuntimeError::BadState { who })?;
            let req_msg = br.action.msg().ok_or(RuntimeError::BadState { who })?;
            let t = target.index();
            let pending = s.to_remote[t].any(|w| w.req_msg() == Some(req_msg))
                || s.remotes[t].buf.map(|(m, _)| m == req_msg).unwrap_or(false);
            if pending {
                Local { state, env: s.home.env.clone() }
            } else if s.to_home[t].any(|w| *w == Wire::Ack) {
                let mut env = s.home.env.clone();
                apply_assigns(br, &mut env, None, who)?;
                Local { state: br.target, env }
            } else if s.to_home[t].any(|w| *w == Wire::Nack) {
                Local { state, env: s.home.env.clone() }
            } else if let Some(&repl) = refined.home_reply.get(&(state, branch)) {
                let reply_val = s.to_home[t].iter().find_map(|w| match w {
                    Wire::Req { msg, val } if *msg == repl => Some(*val),
                    _ => None,
                });
                if reply_val.is_none() && matches!(s.remotes[t].phase, RemotePhase::Awaiting { .. })
                {
                    // No reply anywhere and the awaited remote is itself in
                    // a transient state: it *ignored* our request (remote
                    // rule T3 of Table 1). The request rendezvous never
                    // happened — revert, exactly as if the request were
                    // still in the medium. The home learns of this via the
                    // implicit nack when the remote's own request arrives.
                    return Ok(RvState { home: Local { state, env: s.home.env.clone() }, remotes });
                }
                let mut env = s.home.env.clone();
                apply_assigns(br, &mut env, None, who)?;
                let mut local = Local { state: br.target, env };
                if let Some(val) = reply_val {
                    let mid = spec.home.state(br.target).ok_or(RuntimeError::BadState { who })?;
                    let fb = mid
                        .branches
                        .iter()
                        .find(|b| matches!(&b.action, CommAction::Recv { msg, .. } if *msg == repl))
                        .ok_or(RuntimeError::Unabstractable {
                            detail: "home reply landing state lacks the reply input",
                        })?;
                    if let CommAction::Recv { from, bind, .. } = &fb.action {
                        if let Peer::AnyRemote { bind: Some(v) } = from {
                            local.env.set(v.index(), Value::Node(target));
                        }
                        if let (Some(v), Some(value)) = (bind, val) {
                            local.env.set(v.index(), value);
                        }
                    }
                    apply_assigns(fb, &mut local.env, None, who)?;
                    local.state = fb.target;
                }
                local
            } else if matches!(s.remotes[t].phase, RemotePhase::Awaiting { .. }) {
                // Plain request ignored by a remote in its own transient
                // state (remote rule T3): revert.
                Local { state, env: s.home.env.clone() }
            } else {
                // Remote consumed our *ordinary* request and its response
                // has not been emitted yet: impossible, because the remote's
                // C3 row emits the ack/nack in the same atomic step it
                // consumes the buffered request.
                return Err(RuntimeError::Unabstractable {
                    detail: "home transient with no request, response or reply anywhere",
                });
            }
        }
    };

    Ok(RvState { home, remotes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asynch::AsyncConfig;
    use crate::rendezvous::RendezvousSystem;
    use crate::system::TransitionSystem;
    use ccr_core::builder::ProtocolBuilder;
    use ccr_core::expr::Expr;
    use ccr_core::refine::{refine, RefineOptions, ReqRepMode};
    use ccr_core::value::Value;

    fn token_spec() -> ccr_core::process::ProtocolSpec {
        let mut b = ProtocolBuilder::new("token");
        let req = b.msg("req");
        let gr = b.msg("gr");
        let rel = b.msg("rel");
        let o = b.home_var("o", Value::Node(RemoteId(0)));
        let f = b.home_state("F");
        let g1 = b.home_state("G1");
        let e = b.home_state("E");
        b.home(f).recv_any(req).bind_sender(o).goto(g1);
        b.home(g1).send_to(Expr::Var(o), gr).goto(e);
        b.home(e).recv_exact(rel, Expr::Var(o)).goto(f);
        let i = b.remote_state("I");
        let w = b.remote_state("W");
        let v = b.remote_state("V");
        b.remote(i).send(req).goto(w);
        b.remote(w).recv(gr).goto(v);
        b.remote(v).send(rel).goto(i);
        b.finish().unwrap()
    }

    #[test]
    fn abs_of_initial_is_rendezvous_initial() {
        let spec = token_spec();
        for mode in [ReqRepMode::Auto, ReqRepMode::Off] {
            let refined = refine(&spec, &RefineOptions { reqrep: mode }).unwrap();
            let sys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
            let rv = RendezvousSystem::new(&spec, 2);
            let a = abs(&sys, &sys.initial()).unwrap();
            assert_eq!(rv.encoded(&a), rv.encoded(&rv.initial()));
        }
    }

    /// Walking one async step (remote 0 sends req) must abstract back to the
    /// initial rendezvous state (a stutter): the in-flight request is
    /// discarded and the sender reverted.
    #[test]
    fn in_flight_request_is_a_stutter() {
        let spec = token_spec();
        let refined = refine(&spec, &RefineOptions::default()).unwrap();
        let sys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
        let rv = RendezvousSystem::new(&spec, 2);
        let s0 = sys.initial();
        let mut out = Vec::new();
        sys.successors(&s0, &mut out).unwrap();
        let (_, s1) = out
            .iter()
            .find(|(l, _)| l.rule == "C1" && l.actor == ProcessId::Remote(RemoteId(0)))
            .cloned()
            .expect("remote 0 sends its request");
        let a = abs(&sys, &s1).unwrap();
        assert_eq!(rv.encoded(&a), rv.encoded(&rv.initial()));
    }
}
