//! Long-run simulation driver over any [`TransitionSystem`].
//!
//! The simulator repeatedly asks a [`Scheduler`] to pick among enabled
//! transitions, folds labels into [`MsgStats`], and optionally filters the
//! enabled set (the DSM workload harness uses the filter to enable
//! autonomous `tau` decisions — CPU accesses, evictions — only when the
//! workload wants them).

use crate::error::Result;
use crate::observe::emit_label_events;
use crate::sched::Scheduler;
use crate::stats::MsgStats;
use crate::system::{Label, TransitionSystem};
use ccr_trace::{NullSink, TraceEvent, TraceSink};
use serde::Serialize;
use std::time::{Duration, Instant};

/// Outcome of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SimReport {
    /// Message/progress counters.
    pub stats: MsgStats,
    /// True if the run halted because no transition was enabled.
    pub deadlocked: bool,
    /// Steps actually executed.
    pub steps: u64,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

/// A simulation driver owning the current state.
pub struct Simulator<'s, T: TransitionSystem> {
    sys: &'s T,
    state: T::State,
    stats: MsgStats,
    scratch: Vec<(Label, T::State)>,
    /// Last reported home-buffer occupancy, so `HomeBuffer` events are
    /// emitted only on change.
    last_home_buf: Option<u32>,
}

impl<'s, T: TransitionSystem> Simulator<'s, T> {
    /// Starts a simulation from the initial state.
    pub fn new(sys: &'s T) -> Self {
        let state = sys.initial();
        Self { sys, state, stats: MsgStats::new(), scratch: Vec::new(), last_home_buf: None }
    }

    /// Read access to the current state.
    pub fn state(&self) -> &T::State {
        &self.state
    }

    /// Read access to the counters so far.
    pub fn stats(&self) -> &MsgStats {
        &self.stats
    }

    /// The transition system being simulated.
    pub fn system(&self) -> &'s T {
        self.sys
    }

    /// Mutable access to the current state, for the fault layer: injecting
    /// a wire fault *is* an out-of-band state mutation.
    pub(crate) fn state_mut(&mut self) -> &mut T::State {
        &mut self.state
    }

    /// Mutable access to the counters, for the fault layer's occupancy
    /// bookkeeping after it mutates links.
    pub(crate) fn stats_mut(&mut self) -> &mut MsgStats {
        &mut self.stats
    }

    /// Executes one step chosen by `sched` among transitions passing
    /// `filter`, narrating it to `sink`. Returns the fired label, or `None`
    /// if nothing was enabled (after filtering).
    ///
    /// Link-occupancy high-water marks are folded into [`MsgStats`]
    /// unconditionally (they are cheap and always useful); per-event
    /// construction is guarded by [`TraceSink::enabled`], so running with
    /// a [`NullSink`] costs one predictable branch per step.
    pub fn step_observed(
        &mut self,
        sched: &mut dyn Scheduler,
        mut filter: impl FnMut(&Label) -> bool,
        sink: &mut dyn TraceSink,
    ) -> Result<Option<Label>> {
        let mut scratch = std::mem::take(&mut self.scratch);
        self.sys.successors(&self.state, &mut scratch)?;
        scratch.retain(|(l, _)| filter(l));
        let labels: Vec<Label> = scratch.iter().map(|(l, _)| l.clone()).collect();
        let picked = sched.pick(&labels);
        let result = match picked {
            Some(idx) if idx < scratch.len() => {
                let (label, next) = scratch.swap_remove(idx);
                let seq = self.stats.steps;
                self.stats.record(&label);
                self.state = next;
                for m in label.emissions() {
                    if let Some(occ) = self.sys.link_occupancy(&self.state, m.from, m.to) {
                        self.stats.record_occupancy(m.from, m.to, occ);
                    }
                }
                if sink.enabled() {
                    self.narrate(sink, seq, &label);
                }
                Some(label)
            }
            _ => None,
        };
        scratch.clear();
        self.scratch = scratch;
        Ok(result)
    }

    /// Emits the events describing one fired step (post-state already
    /// installed in `self.state`).
    fn narrate(&mut self, sink: &mut dyn TraceSink, seq: u64, label: &Label) {
        let sys = self.sys;
        let state = &self.state;
        emit_label_events(sink, seq, label, &|m| sys.msg_name(m), &|m| {
            sys.link_occupancy(state, m.from, m.to)
        });
        if let Some((used, capacity)) = sys.home_buffer_occupancy(state) {
            if self.last_home_buf != Some(used) {
                self.last_home_buf = Some(used);
                sink.emit(&TraceEvent::HomeBuffer { seq, used, capacity });
            }
        }
    }

    /// Executes one step chosen by `sched` among transitions passing
    /// `filter`, without tracing.
    pub fn step_filtered(
        &mut self,
        sched: &mut dyn Scheduler,
        filter: impl FnMut(&Label) -> bool,
    ) -> Result<Option<Label>> {
        self.step_observed(sched, filter, &mut NullSink)
    }

    /// Executes one unfiltered step.
    pub fn step(&mut self, sched: &mut dyn Scheduler) -> Result<Option<Label>> {
        self.step_filtered(sched, |_| true)
    }

    /// Runs up to `max_steps` steps; stops early on deadlock.
    pub fn run(&mut self, sched: &mut dyn Scheduler, max_steps: u64) -> Result<SimReport> {
        self.run_traced(sched, max_steps, &mut NullSink)
    }

    /// Runs up to `max_steps` steps, narrating every step to `sink`; stops
    /// early on deadlock. A terminal [`TraceEvent::Outcome`] is emitted and
    /// the sink flushed before returning.
    pub fn run_traced(
        &mut self,
        sched: &mut dyn Scheduler,
        max_steps: u64,
        sink: &mut dyn TraceSink,
    ) -> Result<SimReport> {
        let started = Instant::now();
        let mut steps = 0;
        let mut deadlocked = false;
        while steps < max_steps {
            match self.step_observed(sched, |_| true, sink)? {
                Some(_) => steps += 1,
                None => {
                    deadlocked = true;
                    break;
                }
            }
        }
        if sink.enabled() {
            sink.emit(&TraceEvent::Outcome {
                outcome: if deadlocked { "Deadlock".into() } else { "Complete".into() },
                detail: None,
                steps: Some(steps),
            });
            sink.flush();
        }
        Ok(SimReport { stats: self.stats.clone(), deadlocked, steps, elapsed: started.elapsed() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asynch::{AsyncConfig, AsyncSystem};
    use crate::rendezvous::RendezvousSystem;
    use crate::sched::{RandomSched, RoundRobinSched};
    use ccr_core::builder::ProtocolBuilder;
    use ccr_core::expr::Expr;
    use ccr_core::ids::RemoteId;
    use ccr_core::refine::{refine, RefineOptions};
    use ccr_core::value::Value;

    fn token_spec() -> ccr_core::process::ProtocolSpec {
        let mut b = ProtocolBuilder::new("token");
        let req = b.msg("req");
        let gr = b.msg("gr");
        let rel = b.msg("rel");
        let o = b.home_var("o", Value::Node(RemoteId(0)));
        let f = b.home_state("F");
        let g1 = b.home_state("G1");
        let e = b.home_state("E");
        b.home(f).recv_any(req).bind_sender(o).goto(g1);
        b.home(g1).send_to(Expr::Var(o), gr).goto(e);
        b.home(e).recv_exact(rel, Expr::Var(o)).goto(f);
        let i = b.remote_state("I");
        let w = b.remote_state("W");
        let v = b.remote_state("V");
        b.remote(i).send(req).goto(w);
        b.remote(w).recv(gr).goto(v);
        b.remote(v).send(rel).goto(i);
        b.finish().unwrap()
    }

    #[test]
    fn rendezvous_simulation_makes_progress() {
        let spec = token_spec();
        let sys = RendezvousSystem::new(&spec, 3);
        let mut sim = Simulator::new(&sys);
        let mut sched = RandomSched::new(1);
        let report = sim.run(&mut sched, 1000).unwrap();
        assert!(!report.deadlocked);
        assert_eq!(report.steps, 1000);
        assert!(report.stats.total_completed() > 100);
    }

    #[test]
    fn async_simulation_makes_progress_with_minimal_buffer() {
        let spec = token_spec();
        let refined = refine(&spec, &RefineOptions::default()).unwrap();
        let sys = AsyncSystem::new(&refined, 3, AsyncConfig::default());
        let mut sim = Simulator::new(&sys);
        let mut sched = RandomSched::new(2);
        let report = sim.run(&mut sched, 5000).unwrap();
        assert!(!report.deadlocked, "derived protocol must not deadlock");
        assert!(report.stats.total_completed() > 100);
        // With the req/gr optimization, messages per rendezvous stays well
        // under the 2-per-rendezvous worst case plus nack retries.
        let mpr = report.stats.messages_per_rendezvous().unwrap();
        assert!(mpr < 4.0, "got {mpr}");
    }

    #[test]
    fn round_robin_async_run_is_fair() {
        let spec = token_spec();
        let refined = refine(&spec, &RefineOptions::default()).unwrap();
        let sys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
        let mut sim = Simulator::new(&sys);
        let mut sched = RoundRobinSched::new(2);
        let report = sim.run(&mut sched, 4000).unwrap();
        assert!(!report.deadlocked);
        assert_eq!(report.stats.starved(2), 0, "round robin should starve nobody");
    }

    #[test]
    fn filter_can_freeze_a_remote() {
        use ccr_core::ids::ProcessId;
        let spec = token_spec();
        let refined = refine(&spec, &RefineOptions::default()).unwrap();
        let sys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
        let mut sim = Simulator::new(&sys);
        let mut sched = RandomSched::new(3);
        for _ in 0..2000 {
            let stepped = sim
                .step_filtered(&mut sched, |l| l.actor != ProcessId::Remote(RemoteId(1)))
                .unwrap();
            if stepped.is_none() {
                break;
            }
        }
        assert_eq!(sim.stats().per_remote.get(&1), None, "frozen remote completed nothing");
        assert!(sim.stats().per_remote.get(&0).copied().unwrap_or(0) > 0);
    }
}
