//! `#[derive(Serialize)]` for the vendored `serde` subset.
//!
//! Hand-rolled token parsing (no `syn`/`quote` — the build is hermetic).
//! Supports exactly what this workspace derives on: non-generic structs
//! with named fields, and non-generic enums with unit, tuple, and struct
//! variants. One field attribute is honored:
//! `#[serde(skip_serializing_if = "path")]` omits the field when the
//! named predicate (called with a reference to the field) returns true.
//! Anything else panics with a clear message at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        ItemKind::Struct(fields) => gen_struct(fields),
        ItemKind::Enum(variants) => gen_enum(&item.name, variants),
    };
    let code = format!(
        "impl ::serde::Serialize for {} {{\n\
         fn serialize(&self, __s: &mut ::serde::Serializer) {{\n{}\n}}\n}}",
        item.name, body
    );
    code.parse().expect("serde_derive: generated code failed to parse")
}

struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    /// Path of the `skip_serializing_if` predicate, if any.
    skip_if: Option<String>,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

fn gen_struct(fields: &[Field]) -> String {
    let mut out = String::from("let mut __m = __s.begin_map();\n");
    for f in fields {
        let n = &f.name;
        match &f.skip_if {
            None => out.push_str(&format!("__m.entry(\"{n}\", &self.{n});\n")),
            Some(pred) => out
                .push_str(&format!("if !{pred}(&self.{n}) {{ __m.entry(\"{n}\", &self.{n}); }}\n")),
        }
    }
    out.push_str("__m.end();");
    out
}

fn gen_enum(name: &str, variants: &[Variant]) -> String {
    let mut out = String::from("match self {\n");
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            Shape::Unit => {
                out.push_str(&format!("{name}::{vn} => {{ __s.serialize_str(\"{vn}\"); }}\n"));
            }
            Shape::Tuple(1) => {
                out.push_str(&format!(
                    "{name}::{vn}(__f0) => {{ let mut __m = __s.begin_map(); \
                     __m.entry(\"{vn}\", __f0); __m.end(); }}\n"
                ));
            }
            Shape::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let elems: Vec<String> = binds.iter().map(|b| format!("__q.elem({b});")).collect();
                out.push_str(&format!(
                    "{name}::{vn}({}) => {{ let mut __m = __s.begin_map(); \
                     __m.entry_with(\"{vn}\", |__s| {{ let mut __q = __s.begin_seq(); {} \
                     __q.end(); }}); __m.end(); }}\n",
                    binds.join(", "),
                    elems.join(" ")
                ));
            }
            Shape::Struct(fields) => {
                let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        let n = &f.name;
                        match &f.skip_if {
                            None => format!("__m2.entry(\"{n}\", {n});"),
                            Some(pred) => {
                                format!("if !{pred}({n}) {{ __m2.entry(\"{n}\", {n}); }}")
                            }
                        }
                    })
                    .collect();
                out.push_str(&format!(
                    "{name}::{vn} {{ {} }} => {{ let mut __m = __s.begin_map(); \
                     __m.entry_with(\"{vn}\", |__s| {{ let mut __m2 = __s.begin_map(); {} \
                     __m2.end(); }}); __m.end(); }}\n",
                    binds.join(", "),
                    entries.join(" ")
                ));
            }
        }
    }
    out.push('}');
    out
}

// ---- parsing ---------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility until `struct` / `enum`.
    let is_enum = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // the `#`
                i += 1; // the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                i += 1;
                break false;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                i += 1;
                break true;
            }
            other => panic!("serde_derive: unexpected token before struct/enum: {other:?}"),
        }
    };
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive: generic types are not supported (type `{name}`)");
        }
    }
    // The body is the next brace group (skips any where clause).
    let body = tokens[i..]
        .iter()
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .unwrap_or_else(|| {
            panic!("serde_derive: `{name}` has no braced body (tuple/unit structs unsupported)")
        });
    let kind = if is_enum {
        ItemKind::Enum(parse_variants(body, &name))
    } else {
        ItemKind::Struct(parse_named_fields(body, &name))
    };
    Item { name, kind }
}

/// Parse `name: Type, ...` pairs, returning the fields with any
/// recognised `#[serde(...)]` attributes.
fn parse_named_fields(body: TokenStream, ctx: &str) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, skip_if) = take_attrs_and_vis(&tokens, i, ctx);
        i = next;
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name in `{ctx}`, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after `{name}` in `{ctx}`, got {other:?}"),
        }
        i = skip_type(&tokens, i);
        fields.push(Field { name, skip_if });
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    fields
}

fn parse_variants(body: TokenStream, ctx: &str) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name in `{ctx}`, got {other:?}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Struct(parse_named_fields(g.stream(), ctx))
            }
            _ => Shape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skip to past the next top-level comma (covers `= discr` too).
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    variants
}

/// Count fields in a tuple variant's parenthesised type list.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    let mut prev_dash = false;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' if prev_dash => {} // `->` in fn types
                '>' => angle -= 1,
                ',' if angle == 0 => count += 1,
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
    }
    // Tolerate a trailing comma.
    if let Some(TokenTree::Punct(p)) = tokens.last() {
        if p.as_char() == ',' {
            count -= 1;
        }
    }
    count
}

/// Skip `#[...]` attributes and `pub` / `pub(...)` visibility, collecting
/// any `#[serde(skip_serializing_if = "path")]` predicate on the way.
fn take_attrs_and_vis(tokens: &[TokenTree], mut i: usize, ctx: &str) -> (usize, Option<String>) {
    let mut skip_if = None;
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if let Some(pred) = parse_serde_attr(g.stream(), ctx) {
                        skip_if = Some(pred);
                    }
                }
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return (i, skip_if),
        }
    }
}

/// If `stream` is the inside of a `#[serde(...)]` attribute, extract the
/// `skip_serializing_if = "path"` predicate. Unknown `serde` arguments
/// panic (better a compile error than silently wrong JSON); non-serde
/// attributes (doc comments etc.) are ignored.
fn parse_serde_attr(stream: TokenStream, ctx: &str) -> Option<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let args = match tokens.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        other => panic!("serde_derive: malformed #[serde] attribute in `{ctx}`: {other:?}"),
    };
    let args: Vec<TokenTree> = args.into_iter().collect();
    let mut skip_if = None;
    let mut i = 0;
    while i < args.len() {
        match &args[i] {
            TokenTree::Ident(id) if id.to_string() == "skip_serializing_if" => {
                match (args.get(i + 1), args.get(i + 2)) {
                    (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                        if eq.as_char() == '=' =>
                    {
                        let text = lit.to_string();
                        let path = text
                            .strip_prefix('"')
                            .and_then(|t| t.strip_suffix('"'))
                            .unwrap_or_else(|| {
                                panic!(
                                    "serde_derive: skip_serializing_if needs a string literal \
                                     in `{ctx}`, got {text}"
                                )
                            });
                        skip_if = Some(path.to_string());
                        i += 3;
                    }
                    other => {
                        panic!("serde_derive: malformed skip_serializing_if in `{ctx}`: {other:?}")
                    }
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            other => panic!(
                "serde_derive: unsupported #[serde] argument in `{ctx}`: {other:?} \
                 (only skip_serializing_if is implemented)"
            ),
        }
    }
    skip_if
}

/// Skip `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Skip a type expression: consume until a `,` at angle-bracket depth 0.
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle = 0i32;
    let mut prev_dash = false;
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            match p.as_char() {
                '<' => angle += 1,
                '>' if prev_dash => {}
                '>' => angle -= 1,
                ',' if angle == 0 => return i,
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
        i += 1;
    }
    i
}
