//! Collection strategies (`proptest::collection`).

use crate::strategy::{Strategy, TestRng};
use std::ops::{Range, RangeInclusive};

/// An inclusive size window for generated collections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    /// Inclusive bounds.
    pub fn new(lo: usize, hi: usize) -> Self {
        assert!(lo <= hi, "empty SizeRange");
        SizeRange { lo, hi }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange::new(n, n)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty SizeRange");
        SizeRange::new(r.start, r.end - 1)
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange::new(*r.start(), *r.end())
    }
}

/// Generate `Vec`s of values from `element`, sized within `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo + 1) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_respected() {
        let s = vec(0u32..10, 2..=5);
        let mut rng = TestRng::for_case(0);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let exact = vec(0u32..10, 3usize);
        assert_eq!(exact.generate(&mut rng).len(), 3);
    }
}
