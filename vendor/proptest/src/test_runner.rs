//! Test-runner configuration (`proptest::test_runner`).

/// How many cases each property runs, mirroring `ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of deterministic cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}
