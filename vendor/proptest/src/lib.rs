//! Minimal, dependency-free drop-in for the subset of the `proptest` API
//! this workspace uses. Vendored so the workspace builds hermetically
//! (no registry access).
//!
//! Semantics vs. real proptest: generation is plain seeded random
//! sampling — there is **no shrinking** and no failure persistence. Each
//! `proptest!` test runs `config.cases` deterministic cases (the rng for
//! case `k` depends only on `k`), so failures reproduce across runs.

#![forbid(unsafe_code)]

pub mod strategy;

pub mod collection;
pub mod option;
pub mod test_runner;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, TestRng};
pub use test_runner::ProptestConfig;

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, TestRng};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Module alias in the spirit of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{collection, option, strategy};
    }
}

/// Assert inside a property; maps to `assert!` (no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property; maps to `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property; maps to `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice between heterogeneous strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::union(::std::vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Define property tests: deterministic seeded cases, no shrinking.
///
/// Supports the standard surface:
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u32..10, v in collection::vec(any::<bool>(), 3)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; expands each test fn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$attr:meta])*
      fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let __strat = ( $( $strat, )+ );
            for __case in 0..__config.cases {
                let mut __rng = $crate::strategy::TestRng::for_case(__case as u64);
                let ( $( $arg, )+ ) =
                    $crate::strategy::Strategy::generate(&__strat, &mut __rng);
                $body
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}
