//! `Option` strategies (`proptest::option`).

use crate::strategy::{Strategy, TestRng};

/// Generate `Some` from `inner` three times out of four, else `None`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64() & 3 == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
