//! Strategies: seeded random value generators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic test rng (SplitMix64). The stream for a case depends
/// only on the case index, so failures reproduce run to run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Rng for case `k` of a property run.
    pub fn for_case(case: u64) -> Self {
        // Golden-ratio spread so consecutive cases land far apart.
        TestRng { state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x1234_5678_9ABC_DEF0 }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erase into a cloneable [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::new(move |rng| self.generate(rng))
    }

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy it selects.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies by finite unrolling: `depth` levels deep, each
    /// level choosing between the leaf strategy and `expand` applied to
    /// the previous level. (`_desired_size` / `_expected_branch` are
    /// accepted for API compatibility and ignored.)
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let expanded = expand(cur).boxed();
            let l = leaf.clone();
            cur = BoxedStrategy::new(move |rng| {
                if rng.next_u64() & 1 == 0 {
                    l.generate(rng)
                } else {
                    expanded.generate(rng)
                }
            });
        }
        cur
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T> {
    f: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { f: Rc::clone(&self.f) }
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> BoxedStrategy<T> {
    /// Wrap a generation function.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy { f: Rc::new(f) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// Uniform choice among already-boxed strategies (see `prop_oneof!`).
pub fn union<T: 'static>(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
    BoxedStrategy::new(move |rng| {
        let i = rng.below(options.len() as u64) as usize;
        options[i].generate(rng)
    })
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized + 'static {
    /// The canonical strategy for this type.
    fn arbitrary() -> BoxedStrategy<Self>;
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> BoxedStrategy<A> {
    A::arbitrary()
}

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<bool> {
        BoxedStrategy::new(|rng| rng.next_u64() & 1 == 1)
    }
}

macro_rules! arb_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> BoxedStrategy<$t> {
                BoxedStrategy::new(|rng| rng.next_u64() as $t)
            }
        }
    )*};
}
arb_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for i64 {
    fn arbitrary() -> BoxedStrategy<i64> {
        BoxedStrategy::new(|rng| rng.next_u64() as i64)
    }
}

// ---- integer range strategies ---------------------------------------------

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---- tuples of strategies ---------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// ---- string pattern strategies ---------------------------------------------

/// `&'static str` acts as a (tiny) regex-like pattern strategy. Supported
/// shape: `[a-z]{m,n}` (one character class, one repetition). Anything
/// else is treated as a literal string.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_class_pattern(self) {
            Some((lo_c, hi_c, lo_n, hi_n)) => {
                let len = lo_n + rng.below((hi_n - lo_n + 1) as u64) as usize;
                (0..len)
                    .map(|_| {
                        let span = hi_c as u32 - lo_c as u32 + 1;
                        char::from_u32(lo_c as u32 + rng.below(span as u64) as u32).unwrap()
                    })
                    .collect()
            }
            None => (*self).to_string(),
        }
    }
}

/// Parse `[X-Y]{m,n}` / `[X-Y]{m}` → `(X, Y, m, n)`.
fn parse_class_pattern(pat: &str) -> Option<(char, char, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let mut chars = class.chars();
    let (lo, dash, hi) = (chars.next()?, chars.next()?, chars.next()?);
    if dash != '-' || chars.next().is_some() {
        return None;
    }
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (m, n) = match counts.split_once(',') {
        Some((m, n)) => (m.trim().parse().ok()?, n.trim().parse().ok()?),
        None => {
            let m = counts.trim().parse().ok()?;
            (m, m)
        }
    };
    (lo <= hi && m <= n).then_some((lo, hi, m, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..1000 {
            let v = (-100i64..100).generate(&mut rng);
            assert!((-100..100).contains(&v));
            let (a, b) = ((0u32..8), (1usize..=3)).generate(&mut rng);
            assert!(a < 8 && (1..=3).contains(&b));
        }
    }

    #[test]
    fn string_patterns() {
        let mut rng = TestRng::for_case(1);
        for _ in 0..200 {
            let s = "[a-z]{1,4}".generate(&mut rng);
            assert!((1..=4).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
        assert_eq!("literal".generate(&mut rng), "literal");
    }

    #[test]
    fn recursion_terminates() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf,
            Node(Box<T>),
        }
        let s = Just(T::Leaf)
            .prop_recursive(4, 16, 2, |inner| inner.prop_map(|t| T::Node(Box::new(t))));
        let mut rng = TestRng::for_case(2);
        for _ in 0..100 {
            let mut t = s.generate(&mut rng);
            let mut depth = 0;
            while let T::Node(inner) = t {
                t = *inner;
                depth += 1;
            }
            assert!(depth <= 4);
        }
    }
}
