//! Minimal, dependency-free drop-in for the subset of `crossbeam` this
//! workspace uses: `channel::{unbounded, Sender, Receiver, TryRecvError}`
//! and `queue::SegQueue`.
//!
//! Vendored so the workspace builds hermetically (no registry access).
//! `channel` is backed by `std::sync::mpsc`; `Sender` is `Clone + Send`
//! and `Receiver` is moved into exactly one consumer thread, which is all
//! the threaded DSM runner needs. `queue::SegQueue` is the multi-producer
//! multi-consumer unbounded queue the parallel model checker uses as a
//! per-worker batch inbox; true crossbeam implements it lock-free over
//! linked segments, this subset keeps the API (`push`/`pop`/`len`/
//! `is_empty`) over a mutexed ring buffer so the crate can stay
//! `forbid(unsafe_code)`.

#![forbid(unsafe_code)]

/// Multi-producer single-consumer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain connected.
        Empty,
        /// All senders have disconnected and the buffer is drained.
        Disconnected,
    }

    impl std::fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                TryRecvError::Disconnected => write!(f, "receiving on a disconnected channel"),
            }
        }
    }

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// The sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only when the receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Create an unbounded mpsc channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

/// Concurrent queues, mirroring `crossbeam::queue`.
pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// An unbounded multi-producer multi-consumer FIFO queue.
    ///
    /// API-compatible with `crossbeam::queue::SegQueue`: `push` never
    /// blocks, `pop` returns `None` when the queue is momentarily empty
    /// (emptiness is not a termination signal — pair it with an external
    /// in-flight counter, as the parallel search engine does).
    #[derive(Debug)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            Self { inner: Mutex::new(VecDeque::new()) }
        }

        /// Enqueues `value` at the back.
        pub fn push(&self, value: T) {
            self.inner.lock().expect("queue poisoned").push_back(value);
        }

        /// Dequeues from the front, or `None` when currently empty.
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().expect("queue poisoned").pop_front()
        }

        /// Number of queued elements at this instant.
        pub fn len(&self) -> usize {
            self.inner.lock().expect("queue poisoned").len()
        }

        /// True when no element is queued at this instant.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};
    use super::queue::SegQueue;
    use std::sync::Arc;

    #[test]
    fn send_try_recv_roundtrip() {
        let (tx, rx) = unbounded();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(41u32).unwrap();
        let tx2 = tx.clone();
        tx2.send(42).unwrap();
        assert_eq!(rx.try_recv(), Ok(41));
        assert_eq!(rx.try_recv(), Ok(42));
        drop(tx);
        drop(tx2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn seg_queue_is_fifo() {
        let q = SegQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn seg_queue_shared_across_threads() {
        let q = Arc::new(SegQueue::new());
        let producers: Vec<_> = (0..4)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        q.push(t * 1000 + i);
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut seen = std::collections::HashSet::new();
        while let Some(v) = q.pop() {
            assert!(seen.insert(v));
        }
        assert_eq!(seen.len(), 4000);
    }
}
