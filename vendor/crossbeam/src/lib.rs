//! Minimal, dependency-free drop-in for the subset of `crossbeam` this
//! workspace uses: `channel::{unbounded, Sender, Receiver, TryRecvError}`.
//!
//! Vendored so the workspace builds hermetically (no registry access).
//! Backed by `std::sync::mpsc`; `Sender` is `Clone + Send` and `Receiver`
//! is moved into exactly one consumer thread, which is all the threaded
//! DSM runner needs.

#![forbid(unsafe_code)]

/// Multi-producer single-consumer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain connected.
        Empty,
        /// All senders have disconnected and the buffer is drained.
        Disconnected,
    }

    impl std::fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                TryRecvError::Disconnected => write!(f, "receiving on a disconnected channel"),
            }
        }
    }

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// The sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only when the receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Create an unbounded mpsc channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};

    #[test]
    fn send_try_recv_roundtrip() {
        let (tx, rx) = unbounded();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(41u32).unwrap();
        let tx2 = tx.clone();
        tx2.send(42).unwrap();
        assert_eq!(rx.try_recv(), Ok(41));
        assert_eq!(rx.try_recv(), Ok(42));
        drop(tx);
        drop(tx2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }
}
