//! Minimal, dependency-free drop-in for the subset of `serde` this
//! workspace uses: the [`Serialize`] trait plus a `#[derive(Serialize)]`
//! macro (behind the `derive` feature), rendering JSON directly.
//!
//! Vendored so the workspace builds hermetically (no registry access).
//! Unlike real serde there is no `Serializer` abstraction over formats —
//! the only output format anyone here needs is JSON (JSONL traces and
//! `--json` reports), so [`Serializer`] *is* the JSON writer. Enum
//! representation matches serde's externally-tagged default: a unit
//! variant renders as `"Name"`, a newtype variant as `{"Name":value}`,
//! a tuple variant as `{"Name":[..]}`, a struct variant as
//! `{"Name":{..}}`. Map keys are emitted in sorted order so output is
//! deterministic regardless of `HashMap` iteration order.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::time::Duration;

/// Types that can render themselves as JSON.
pub trait Serialize {
    /// Append this value's JSON encoding to `s`.
    fn serialize(&self, s: &mut Serializer);
}

/// A JSON writer. Values append themselves via [`Serialize::serialize`].
#[derive(Debug, Default)]
pub struct Serializer {
    out: String,
}

impl Serializer {
    /// Fresh, empty writer.
    pub fn new() -> Self {
        Serializer { out: String::new() }
    }

    /// Consume the writer, yielding the accumulated JSON text.
    pub fn into_string(self) -> String {
        self.out
    }

    /// Emit a JSON string with escaping.
    pub fn serialize_str(&mut self, v: &str) {
        self.out.push('"');
        for c in v.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    /// Emit a raw JSON token (a number, `true`, `false`, or `null`).
    pub fn serialize_raw(&mut self, tok: &str) {
        self.out.push_str(tok);
    }

    /// Emit `null`.
    pub fn serialize_null(&mut self) {
        self.out.push_str("null");
    }

    /// Start a JSON object; finish it with [`MapSer::end`].
    pub fn begin_map(&mut self) -> MapSer<'_> {
        self.out.push('{');
        MapSer { ser: self, first: true }
    }

    /// Start a JSON array; finish it with [`SeqSer::end`].
    pub fn begin_seq(&mut self) -> SeqSer<'_> {
        self.out.push('[');
        SeqSer { ser: self, first: true }
    }
}

/// In-progress JSON object.
#[derive(Debug)]
pub struct MapSer<'a> {
    ser: &'a mut Serializer,
    first: bool,
}

impl MapSer<'_> {
    fn key(&mut self, key: &str) {
        if !self.first {
            self.ser.out.push(',');
        }
        self.first = false;
        self.ser.serialize_str(key);
        self.ser.out.push(':');
    }

    /// Append one `"key":value` entry.
    pub fn entry<T: Serialize + ?Sized>(&mut self, key: &str, value: &T) {
        self.key(key);
        value.serialize(self.ser);
    }

    /// Append one entry whose value is written by `f` (used for tuple and
    /// struct enum variants).
    pub fn entry_with(&mut self, key: &str, f: impl FnOnce(&mut Serializer)) {
        self.key(key);
        f(self.ser);
    }

    /// Close the object.
    pub fn end(self) {
        self.ser.out.push('}');
    }
}

/// In-progress JSON array.
#[derive(Debug)]
pub struct SeqSer<'a> {
    ser: &'a mut Serializer,
    first: bool,
}

impl SeqSer<'_> {
    /// Append one element.
    pub fn elem<T: Serialize + ?Sized>(&mut self, value: &T) {
        self.elem_with(|s| value.serialize(s));
    }

    /// Append one element written by `f`.
    pub fn elem_with(&mut self, f: impl FnOnce(&mut Serializer)) {
        if !self.first {
            self.ser.out.push(',');
        }
        self.first = false;
        f(self.ser);
    }

    /// Close the array.
    pub fn end(self) {
        self.ser.out.push(']');
    }
}

/// JSON entry points, in the spirit of `serde_json`.
pub mod json {
    use super::{Serialize, Serializer};

    /// Render any [`Serialize`] value to a JSON string.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut s = Serializer::new();
        value.serialize(&mut s);
        s.into_string()
    }
}

// ---- primitive impls -------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, s: &mut Serializer) {
                s.serialize_raw(&self.to_string());
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for bool {
    fn serialize(&self, s: &mut Serializer) {
        s.serialize_raw(if *self { "true" } else { "false" });
    }
}

impl Serialize for f64 {
    fn serialize(&self, s: &mut Serializer) {
        if self.is_finite() {
            let text = self.to_string();
            s.serialize_raw(&text);
        } else {
            s.serialize_null();
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self, s: &mut Serializer) {
        (*self as f64).serialize(s);
    }
}

impl Serialize for str {
    fn serialize(&self, s: &mut Serializer) {
        s.serialize_str(self);
    }
}

impl Serialize for String {
    fn serialize(&self, s: &mut Serializer) {
        s.serialize_str(self);
    }
}

impl Serialize for char {
    fn serialize(&self, s: &mut Serializer) {
        s.serialize_str(&self.to_string());
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, s: &mut Serializer) {
        (**self).serialize(s);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self, s: &mut Serializer) {
        (**self).serialize(s);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, s: &mut Serializer) {
        match self {
            Some(v) => v.serialize(s),
            None => s.serialize_null(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, s: &mut Serializer) {
        let mut seq = s.begin_seq();
        for v in self {
            seq.elem(v);
        }
        seq.end();
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, s: &mut Serializer) {
        self.as_slice().serialize(s);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, s: &mut Serializer) {
        self.as_slice().serialize(s);
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize(&self, s: &mut Serializer) {
        let mut seq = s.begin_seq();
        for v in self {
            seq.elem(v);
        }
        seq.end();
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self, s: &mut Serializer) {
                let mut seq = s.begin_seq();
                $(seq.elem(&self.$n);)+
                seq.end();
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Render a map key: serialize it, and if the result is not already a
/// JSON string (e.g. an integer key), wrap it in quotes as serde_json does.
fn key_string<K: Serialize>(key: &K) -> String {
    let rendered = json::to_string(key);
    if rendered.starts_with('"') {
        rendered
    } else {
        format!("\"{rendered}\"")
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self, s: &mut Serializer) {
        // Sort by rendered key for deterministic output.
        let mut entries: Vec<(String, &V)> = self.iter().map(|(k, v)| (key_string(k), v)).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        write_map(s, entries);
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self, s: &mut Serializer) {
        let entries: Vec<(String, &V)> = self.iter().map(|(k, v)| (key_string(k), v)).collect();
        write_map(s, entries);
    }
}

fn write_map<V: Serialize>(s: &mut Serializer, entries: Vec<(String, &V)>) {
    s.serialize_raw("{");
    for (i, (k, v)) in entries.iter().enumerate() {
        if i > 0 {
            s.serialize_raw(",");
        }
        s.serialize_raw(k);
        s.serialize_raw(":");
        v.serialize(s);
    }
    s.serialize_raw("}");
}

impl Serialize for Duration {
    fn serialize(&self, s: &mut Serializer) {
        // Matches serde's own Duration representation.
        let mut m = s.begin_map();
        m.entry("secs", &self.as_secs());
        m.entry("nanos", &self.subsec_nanos());
        m.end();
    }
}

impl Serialize for () {
    fn serialize(&self, s: &mut Serializer) {
        s.serialize_null();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_render_as_json() {
        assert_eq!(json::to_string(&3u32), "3");
        assert_eq!(json::to_string(&-4i64), "-4");
        assert_eq!(json::to_string(&true), "true");
        assert_eq!(json::to_string("a\"b\n"), "\"a\\\"b\\n\"");
        assert_eq!(json::to_string(&Some(1u8)), "1");
        assert_eq!(json::to_string(&None::<u8>), "null");
        assert_eq!(json::to_string(&vec![1, 2, 3]), "[1,2,3]");
        assert_eq!(json::to_string(&(1u8, "x")), "[1,\"x\"]");
        assert_eq!(json::to_string(&1.5f64), "1.5");
    }

    #[test]
    fn maps_are_sorted_and_integer_keys_quoted() {
        let mut m = HashMap::new();
        m.insert(10u32, "b");
        m.insert(2u32, "a");
        assert_eq!(json::to_string(&m), "{\"10\":\"b\",\"2\":\"a\"}");
    }

    #[test]
    fn duration_matches_serde_shape() {
        let d = Duration::new(2, 500);
        assert_eq!(json::to_string(&d), "{\"secs\":2,\"nanos\":500}");
    }

    #[test]
    fn manual_object_building() {
        let mut s = Serializer::new();
        let mut m = s.begin_map();
        m.entry("a", &1u8);
        m.entry_with("b", |s| {
            let mut q = s.begin_seq();
            q.elem(&true);
            q.end();
        });
        m.end();
        assert_eq!(s.into_string(), "{\"a\":1,\"b\":[true]}");
    }
}
