//! Minimal, dependency-free drop-in for the subset of `criterion` this
//! workspace uses: `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `finish`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Vendored so the workspace builds hermetically (no registry access).
//! Measurement is deliberately simple — per-sample wall-clock timing with
//! a short warm-up, reporting min/median/mean — not criterion's bootstrap
//! statistics. Good enough to compare runs on the same machine, which is
//! all the repo's perf gates need.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup { _c: self, name, sample_size: 20 }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time `f` and print a one-line summary.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: Vec::new(), per_sample_iters: 1 };
        // Warm-up and calibration: target roughly 10ms per sample, capped.
        let mut probe = Bencher { samples: Vec::new(), per_sample_iters: 1 };
        f(&mut probe);
        let one = probe.samples.first().copied().unwrap_or(Duration::from_micros(1));
        let target = Duration::from_millis(10);
        b.per_sample_iters = if one.is_zero() {
            1000
        } else {
            ((target.as_nanos() / one.as_nanos().max(1)) as usize).clamp(1, 10_000)
        };
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let mut per_iter: Vec<f64> =
            b.samples.iter().map(|d| d.as_nanos() as f64 / b.per_sample_iters as f64).collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let min = per_iter.first().copied().unwrap_or(0.0);
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "  {}/{id}: min {} median {} mean {} ({} samples x {} iters)",
            self.name,
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            per_iter.len(),
            b.per_sample_iters,
        );
        self
    }

    /// End the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the code
/// under test.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    per_sample_iters: usize,
}

impl Bencher {
    /// Time `per_sample_iters` executions of `f` as one sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.per_sample_iters {
            std::hint::black_box(f());
        }
        self.samples.push(start.elapsed());
    }
}

/// Re-export so `criterion::black_box` also works.
pub use std::hint::black_box;

/// Bundle benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($f(&mut c);)+
        }
    };
}

/// Entry point running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($g:path),+ $(,)?) => {
        fn main() {
            $($g();)+
        }
    };
}
