//! Minimal, dependency-free drop-in for the subset of the `rand` 0.9 API
//! this workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::random_range` over `usize` ranges, and `Rng::random_bool`.
//!
//! Vendored so the workspace builds hermetically (no registry access).
//! The generator is SplitMix64: statistically fine for scheduling and
//! workload decisions, fully deterministic per seed, but NOT a
//! reproduction of upstream `StdRng`'s ChaCha streams and NOT
//! cryptographically secure.

#![forbid(unsafe_code)]

/// Rngs seedable from simple integer seeds.
pub trait SeedableRng: Sized {
    /// Build an rng whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling surface used by this workspace.
pub trait Rng {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from a half-open `usize` range (`low..high`, non-empty).
    fn random_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "random_range: empty range");
        let span = (range.end - range.start) as u64;
        // Multiply-shift bounded sampling; bias is < 2^-64 per draw, far
        // below anything observable at simulation scales.
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi as usize
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // Compare 53 uniform mantissa bits against p.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Named rng types, mirroring `rand::rngs`.
pub mod rngs {
    /// Deterministic 64-bit generator (SplitMix64 under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014): passes BigCrush, one
            // add + two xor-shift-multiplies per draw.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(3..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
