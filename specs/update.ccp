protocol update {
  messages rreq, gr, upd, push, rel;
  home {
    var s: mask := mask(0);
    var t: mask := mask(0);
    var j: node := r0;
    var k: node := r0;
    var w: node := r0;
    var d: int := 0;
    state F init {
      r(* -> j) ? rreq -> GR;
    }
    state GR {
      r(j) ! gr (d) { s := madd(s, j); } -> S;
    }
    state S {
      r(* -> j) ? rreq -> GR;
      r(* -> k) ? rel { s := mdel(s, k); } -> SCHK;
      r(* -> w) ? upd (bind d) { t := mdel(s, w); } -> PUSHC;
    }
    internal SCHK {
      when empty(s) tau -> F;
      when !(empty(s)) tau -> S;
    }
    state PUSH {
      when !(empty(t)) r(first(t)) ! push (d) { t := mdel(t, first(t)); } -> PUSHC;
      r(* -> k) ? rel { s := mdel(s, k); t := mdel(t, k); } -> PUSHC;
      r(* -> w) ? upd (bind d) { t := mdel(s, w); } -> PUSHC;
    }
    internal PUSHC {
      when empty(t) tau -> S;
      when !(empty(t)) tau -> PUSH;
    }
  }
  remote {
    var data: int := 0;
    state I init {
      tau #read -> RRQ;
    }
    state RRQ {
      h ! rreq -> WR;
    }
    state WR {
      h ? gr (bind data) -> Sh;
    }
    state Sh {
      h ? push (bind data) -> Sh;
      tau #write -> UPDS;
      tau #evict -> RELS;
    }
    state UPDS {
      h ! upd (((data + 1) % 2)) { data := ((data + 1) % 2); } -> Sh;
    }
    state RELS {
      h ! rel { data := 0; } -> I;
    }
  }
}
