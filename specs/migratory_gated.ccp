protocol migratory {
  messages req, gr, LR, inv, ID;
  home {
    var o: node := r0;
    var j: node := r0;
    var d: int := 0;
    state F init {
      r(* -> j) ? req -> G1;
    }
    state G1 {
      r(j) ! gr (d) { o := j; } -> E;
    }
    state E {
      r(* -> j) ? req -> I1;
      r(o) ? LR (bind d) -> F;
    }
    state I1 {
      r(o) ! inv -> I2;
      r(o) ? LR (bind d) -> I3;
    }
    state I2 {
      r(o) ? ID (bind d) -> I3;
      r(o) ? LR (bind d) -> I3;
    }
    state I3 {
      r(j) ! gr (d) { o := j; } -> E;
    }
  }
  remote {
    var data: int := 0;
    state I init {
      tau #access -> RQ;
    }
    state RQ {
      h ! req -> W;
    }
    state W {
      h ? gr (bind data) -> V;
    }
    state V {
      tau #write { data := ((data + 1) % 2); } -> V;
      h ? inv -> IDS;
      tau #evict -> LRS;
    }
    state IDS {
      h ! ID (data) { data := 0; } -> I;
    }
    state LRS {
      h ! LR (data) { data := 0; } -> I;
    }
  }
}
