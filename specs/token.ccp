protocol token {
  messages req, gr, rel;
  home {
    var o: node := r0;
    state F init {
      r(* -> o) ? req -> G1;
    }
    state G1 {
      r(o) ! gr -> E;
    }
    state E {
      r(o) ? rel -> F;
    }
  }
  remote {
    state I init {
      tau #acquire -> RQ;
    }
    state RQ {
      h ! req -> W;
    }
    state W {
      h ? gr -> V;
    }
    state V {
      h ! rel -> I;
    }
  }
}
