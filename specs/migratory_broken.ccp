protocol migratory_broken {
  messages req, gr, LR, inv, ID;
  home {
    var o: node := r0;
    var j: node := r0;
    state F init {
      r(* -> j) ? req -> G1;
    }
    state G1 {
      r(j) ! gr { o := j; } -> E;
    }
    state E {
      r(* -> j) ? req -> I1;
      r(o) ? LR -> F;
    }
    state I1 {
      r(o) ! inv -> I2;
      r(o) ? LR -> I3;
    }
    state I2 {
      r(o) ? LR -> I3;
    }
    state I3 {
      r(j) ! gr { o := j; } -> E;
    }
  }
  remote {
    state RQ init {
      h ! req -> W;
    }
    state W {
      h ? gr -> V;
    }
    state V {
      h ? inv -> IDS;
      tau #evict -> LRS;
    }
    state IDS {
      h ! ID -> RQ;
    }
    state LRS {
      h ! LR -> RQ;
    }
  }
}
