protocol zoo_chain {
  messages req, a, b, c;
  home {
    var o: node := r0;
    state H0 init {
      r(* -> o) ? req -> H1;
    }
    state H1 {
      r(o) ! a -> H2;
    }
    state H2 {
      r(o) ! b -> H3;
    }
    state H3 {
      r(o) ! c -> H0;
    }
  }
  remote {
    state R0 init {
      h ! req -> R1;
    }
    state R1 {
      h ? a -> R2;
    }
    state R2 {
      h ? b -> R3;
    }
    state R3 {
      h ? c -> R0;
    }
  }
}
