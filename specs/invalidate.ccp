protocol invalidate {
  messages rreq, wreq, gr, grx, invs, inv, ID, rel, wb;
  home {
    var s: mask := mask(0);
    var o: node := r0;
    var j: node := r0;
    var k: node := r0;
    var d: int := 0;
    state F init {
      r(* -> j) ? rreq -> GS;
      r(* -> j) ? wreq -> GX;
    }
    state GS {
      r(j) ! gr (d) { s := madd(s, j); } -> S;
    }
    state GX {
      r(j) ! grx (d) { o := j; } -> E;
    }
    state S {
      r(* -> j) ? rreq -> GS;
      r(* -> j) ? wreq -> INV;
      r(* -> k) ? rel { s := mdel(s, k); } -> SCHK;
    }
    internal SCHK {
      when empty(s) tau -> F;
      when !(empty(s)) tau -> S;
    }
    state INV {
      when !(empty(s)) r(first(s)) ! invs { s := mdel(s, first(s)); } -> INVC;
      r(* -> k) ? rel { s := mdel(s, k); } -> INVC;
    }
    internal INVC {
      when empty(s) tau -> GX;
      when !(empty(s)) tau -> INV;
    }
    state E {
      r(* -> j) ? rreq -> RVS;
      r(* -> j) ? wreq -> RVX;
      r(o) ? wb (bind d) -> F;
    }
    state RVS {
      r(o) ! inv -> RVS2;
      r(o) ? wb (bind d) -> GS;
    }
    state RVS2 {
      r(o) ? ID (bind d) -> GS;
      r(o) ? wb (bind d) -> GS;
    }
    state RVX {
      r(o) ! inv -> RVX2;
      r(o) ? wb (bind d) -> GX;
    }
    state RVX2 {
      r(o) ? ID (bind d) -> GX;
      r(o) ? wb (bind d) -> GX;
    }
  }
  remote {
    var data: int := 0;
    state I init {
      tau #read -> RRQ;
      tau #write -> WRQ;
    }
    state RRQ {
      h ! rreq -> WR;
    }
    state WR {
      h ? gr (bind data) -> Sh;
    }
    state WRQ {
      h ! wreq -> WW;
    }
    state WW {
      h ? grx (bind data) -> M;
    }
    state Sh {
      h ? invs { data := 0; } -> I;
      tau #evict -> RELS;
    }
    state RELS {
      h ! rel { data := 0; } -> I;
    }
    state M {
      tau #write { data := ((data + 1) % 2); } -> M;
      h ? inv -> IDS;
      tau #evict -> WBS;
    }
    state IDS {
      h ! ID (data) { data := 0; } -> I;
    }
    state WBS {
      h ! wb (data) { data := 0; } -> I;
    }
  }
}
