protocol zoo_unsound_pair {
  messages m0, m1;
  home {
    var o: node := r0;
    state H0 init {
      r(o) ? m0 -> H1;
    }
    state H1 {
      r(o) ! m1 -> H0;
    }
  }
  remote {
    state R0 init {
      h ! m0 -> R0;
    }
  }
}
