//! Writing your own protocol: a read-once "mailbox" protocol built with
//! the `ProtocolBuilder` DSL, validated, refined and verified end to end.
//!
//! The protocol: the home holds a mailbox value. A remote may `put` a new
//! value (overwriting) or `get` the current value. `get` is answered by a
//! `val` reply — a request/reply pair the refinement should discover —
//! while `put` is a plain rendezvous that costs request+ack.
//!
//! Run: `cargo run --release --example custom_protocol`

use ccr_core::dot::dot_automaton;
use coherence_refinement::prelude::*;

fn build_mailbox() -> ProtocolSpec {
    let mut b = ProtocolBuilder::new("mailbox");
    let put = b.msg("put");
    let get = b.msg("get");
    let val = b.msg("val");

    // Home: a single communication state serving puts and gets.
    let mbox = b.home_var("mbox", Value::Int(0));
    let requester = b.home_var("requester", Value::Node(RemoteId(0)));
    let serve = b.home_state("Serve");
    let reply = b.home_state("Reply");
    // put(v): store the value, ack implicitly via the ordinary scheme.
    b.home(serve).recv_any(put).bind(mbox).goto(serve);
    // get: remember who asked, answer with the mailbox contents.
    b.home(serve).recv_any(get).bind_sender(requester).goto(reply);
    b.home(reply).send_to(Expr::Var(requester), val).payload(Expr::Var(mbox)).goto(serve);

    // Remote: idle; sometimes put, sometimes get.
    let seen = b.remote_var("seen", Value::Int(0));
    let counter = b.remote_var("counter", Value::Int(0));
    let idle = b.remote_state("Idle");
    let putting = b.remote_state("Putting");
    let getting = b.remote_state("Getting");
    let waiting = b.remote_state("WaitVal");
    b.remote(idle).tau().tag("put").goto(putting);
    b.remote(idle).tau().tag("get").goto(getting);
    // Each put writes a fresh (bounded) value derived from a local counter.
    b.remote(putting)
        .send(put)
        .payload(Expr::add_mod(Expr::Var(counter), Expr::int(1), 4))
        .assign(counter, Expr::add_mod(Expr::Var(counter), Expr::int(1), 4))
        .goto(idle);
    b.remote(getting).send(get).goto(waiting);
    b.remote(waiting).recv(val).bind(seen).goto(idle);

    b.finish().expect("mailbox satisfies the syntactic restrictions")
}

fn main() {
    let spec = build_mailbox();
    let refined = refine(&spec, &RefineOptions::default()).expect("refinable");

    println!("=== mailbox protocol ===");
    println!(
        "detected pairs: {:?}",
        refined
            .pairs
            .iter()
            .map(|p| format!("{}→{}", spec.msg_name(p.req), spec.msg_name(p.repl)))
            .collect::<Vec<_>>()
    );
    assert_eq!(refined.pairs.len(), 1, "get/val should be the only pair");
    let put = spec.msg_by_name("put").unwrap();
    let get = spec.msg_by_name("get").unwrap();
    println!(
        "message cost per rendezvous: put={} get={} (val rides for free)",
        refined.message_cost(put),
        refined.message_cost(get)
    );

    // Verify: reachability, deadlock-freedom, soundness, progress.
    let n = 2;
    let rv = RendezvousSystem::new(&spec, n);
    let r = ccr_mc::search::explore(&rv, &Budget::default(), |_| None, true);
    println!("rendezvous: {} states, outcome {:?}", r.states, r.outcome);

    let asys = AsyncSystem::new(&refined, n, AsyncConfig::default());
    let a = ccr_mc::search::explore(&asys, &Budget::default(), |_| None, true);
    println!("asynchronous: {} states, outcome {:?}", a.states, a.outcome);

    let sim = check_simulation(&asys, &rv, &Budget::default());
    println!("Equation 1 holds: {}", sim.holds());
    assert!(sim.holds());
    let prog = check_progress_default(&asys, &Budget::default());
    println!("progress holds: {}", prog.holds());
    assert!(prog.holds());

    // Render the refined remote automaton (transients drawn dotted).
    println!();
    println!("=== refined remote automaton (Graphviz) ===");
    println!("{}", dot_automaton(&refined.remote, "mailbox remote (refined)"));
}
