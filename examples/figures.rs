//! Regenerates the paper's figures as Graphviz DOT files:
//!
//! * Figure 2 — migratory home node (rendezvous)
//! * Figure 3 — migratory remote node (rendezvous)
//! * Figure 4 — refined migratory home node (transients dotted)
//! * Figure 5 — refined migratory remote node
//! * plus the invalidate protocol, which the paper only tabulates.
//!
//! Run: `cargo run --release --example figures [out_dir]`
//! Render: `dot -Tpdf out/figure2_migratory_home.dot -o figure2.pdf`

use ccr_core::dot::{dot_automaton, dot_process};
use coherence_refinement::prelude::*;
use std::fs;
use std::path::PathBuf;

fn main() {
    let out: PathBuf =
        std::env::args().nth(1).map(PathBuf::from).unwrap_or_else(|| PathBuf::from("figures-out"));
    fs::create_dir_all(&out).expect("create output directory");

    let opts = MigratoryOptions::checking();
    let spec = migratory(&opts);
    let refined = migratory_refined(&opts);

    let files = [
        ("figure2_migratory_home.dot", dot_process(&spec, &spec.home, "Figure 2: migratory home")),
        (
            "figure3_migratory_remote.dot",
            dot_process(&spec, &spec.remote, "Figure 3: migratory remote"),
        ),
        (
            "figure4_refined_home.dot",
            dot_automaton(&refined.home, "Figure 4: refined migratory home"),
        ),
        (
            "figure5_refined_remote.dot",
            dot_automaton(&refined.remote, "Figure 5: refined migratory remote"),
        ),
    ];
    for (name, contents) in files {
        let path = out.join(name);
        fs::write(&path, contents).expect("write dot file");
        println!("wrote {}", path.display());
    }

    let inv = invalidate(&InvalidateOptions::default());
    let inv_refined = invalidate_refined(&InvalidateOptions::default());
    for (name, contents) in [
        ("invalidate_home.dot", dot_process(&inv, &inv.home, "invalidate home")),
        ("invalidate_remote.dot", dot_process(&inv, &inv.remote, "invalidate remote")),
        (
            "invalidate_refined_home.dot",
            dot_automaton(&inv_refined.home, "invalidate home (refined)"),
        ),
        (
            "invalidate_refined_remote.dot",
            dot_automaton(&inv_refined.remote, "invalidate remote (refined)"),
        ),
    ] {
        let path = out.join(name);
        fs::write(&path, contents).expect("write dot file");
        println!("wrote {}", path.display());
    }

    println!();
    println!(
        "Structure check — refined migratory: home has {} transient state(s) \
         (Figure 4 shows 1, for inv), remote has {} (Figure 5 shows 2, for req and LR).",
        refined.home.transient_count(),
        refined.remote.transient_count()
    );
}
