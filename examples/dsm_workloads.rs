//! Driving the DSM machine with the workloads the paper's domain
//! motivates: migratory sharing, producer/consumer, read-mostly and
//! hot-spot — comparing the derived protocol variants on message cost and
//! fairness, plus a real multi-threaded run over crossbeam channels.
//!
//! Run: `cargo run --release --example dsm_workloads`

use ccr_dsm::threaded::{run_threaded, ThreadedConfig};
use ccr_protocols::hand::hand_async_config;
use coherence_refinement::prelude::*;

const STEPS: u64 = 100_000;

fn main() {
    let n = 4u32;

    println!("== Migratory protocol under four workloads (n={n}, {STEPS} steps) ==");
    let refined = migratory_refined(&MigratoryOptions::default());
    let workloads: Vec<(&str, Box<dyn Workload>)> = vec![
        ("migrating", Box::new(Migrating::new(1, 0.7, 0.5))),
        ("read-mostly", Box::new(ReadMostly::new(2, 0.1, 0.7, 0.3))),
        ("hot-spot", Box::new(HotSpot::new(3, RemoteId(0), 0.9, 0.05))),
        ("prod/cons", Box::new(ProducerConsumer::new(4, RemoteId(0), 0.7, 0.4))),
    ];
    for (name, mut wl) in workloads {
        let config = MachineConfig::standard(&refined, n, STEPS);
        let machine = Machine::new(&refined, config);
        let mut sched = RandomSched::new(10);
        let report = machine.run(name, wl.as_mut(), &mut sched).expect("run");
        println!("{}", report.summary());
    }
    println!();

    println!("== Invalidate protocol: read-sharing pays off ==");
    let inv = invalidate_refined(&InvalidateOptions::default());
    for (name, mut wl) in [
        ("read-mostly", ReadMostly::new(5, 0.05, 0.7, 0.2)),
        ("write-heavy", ReadMostly::new(6, 0.9, 0.7, 0.2)),
    ] {
        let config = MachineConfig::standard(&inv, n, STEPS);
        let machine = Machine::new(&inv, config);
        let mut sched = RandomSched::new(11);
        let report = machine.run(name, &mut wl, &mut sched).expect("run");
        println!("{}", report.summary());
    }
    println!();

    println!("== Derived vs hand-written baseline (the §5 comparison) ==");
    let hand = migratory_hand(&MigratoryOptions::default());
    for (variant, refined, hand_mode) in [("derived", &refined, false), ("hand", &hand, true)] {
        let mut config = MachineConfig::standard(refined, n, STEPS);
        if hand_mode {
            config.asynch = hand_async_config(n);
        }
        let machine = Machine::new(refined, config);
        let mut wl = Migrating::new(20, 0.7, 0.5);
        let mut sched = RandomSched::new(21);
        let report = machine.run(variant, &mut wl, &mut sched).expect("run");
        println!("{}", report.summary());
    }
    println!();

    println!("== Deployment-style run: one OS thread per node ==");
    let config = ThreadedConfig { n, target_ops: 2_000, ..Default::default() };
    let report = run_threaded(&refined, &config);
    println!(
        "  {} ops in {:?} across {} threads; per-remote completions {:?}; errors: {:?}",
        report.ops,
        report.elapsed,
        n + 1,
        report.per_remote,
        report.error
    );
}
