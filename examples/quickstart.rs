//! Quickstart: specify, refine, verify and run the paper's migratory
//! protocol in under a hundred lines.
//!
//! Run: `cargo run --release --example quickstart`

use ccr_core::pretty::render_spec;
use coherence_refinement::prelude::*;

fn main() {
    // 1. The rendezvous specification of the migratory protocol — the
    //    atomic-transaction view of Figures 2 and 3.
    let opts = MigratoryOptions::checking();
    let spec = migratory(&opts);
    println!("=== Rendezvous specification (CSP-like) ===");
    println!("{}", render_spec(&spec));

    // 2. Refine it: every rendezvous becomes request + ack/nack, transient
    //    states absorb races, and the request/reply optimization elides the
    //    acks of req/gr and inv/ID (exactly the pairs the paper derives).
    let refined = migratory_refined(&opts);
    println!("=== Request/reply pairs found ===");
    for p in &refined.pairs {
        println!(
            "  {} answered by {} ({:?}) — 2 messages instead of 4",
            refined.spec.msg_name(p.req),
            refined.spec.msg_name(p.repl),
            p.direction
        );
    }
    println!();

    // 3. Verify at the cheap rendezvous level...
    let n = 3;
    let rv = RendezvousSystem::new(&spec, n);
    let r = explore_plain(&rv, &Budget::default());
    println!("rendezvous level, n={n}: {} states, complete={}", r.states, r.outcome.is_complete());

    // ...and confirm the derived asynchronous protocol implements it.
    let asys = AsyncSystem::new(&refined, n, AsyncConfig::default());
    let a = explore_plain(&asys, &Budget::default());
    println!(
        "asynchronous level, n={n}: {} states ({}x more)",
        a.states,
        a.states / r.states.max(1)
    );

    let sim = check_simulation(&asys, &RendezvousSystem::new(&refined.spec, 2), &Budget::default());
    println!(
        "Equation 1 (soundness): holds={} over {} transitions ({} stutters, {} mapped steps)",
        sim.holds(),
        sim.transitions_checked,
        sim.stutters,
        sim.mapped_steps
    );
    let prog = check_progress_default(&asys, &Budget::default());
    println!("forward progress (§2.5): holds={}", prog.holds());
    println!();

    // 4. Run it as a DSM machine under a migratory workload.
    let run_opts = MigratoryOptions::default(); // CPU-gated variant for workloads
    let runnable = migratory_refined(&run_opts);
    let config = MachineConfig::standard(&runnable, 4, 50_000);
    let machine = Machine::new(&runnable, config);
    let mut workload = Migrating::new(7, 0.7, 0.5);
    let mut sched = RandomSched::new(8);
    let report = machine.run("derived", &mut workload, &mut sched).expect("machine run");
    println!("=== DSM machine run ===");
    println!("{}", report.summary());
}
