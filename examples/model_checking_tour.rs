//! A tour of the verification toolkit: reachability with budgets,
//! coherence invariants, deadlock detection, the Equation 1 simulation
//! check, and livelock (progress) analysis — the paper's whole §4 and §5
//! methodology on both bundled protocols.
//!
//! Run: `cargo run --release --example model_checking_tour`

use ccr_protocols::props;
use coherence_refinement::prelude::*;

fn main() {
    println!("== 1. Reachability under a memory budget (the Table 3 setup) ==");
    let opts = MigratoryOptions::checking_with_data(2);
    let refined = migratory_refined(&opts);
    for n in [2u32, 3, 4] {
        let rv = RendezvousSystem::new(&refined.spec, n);
        let asys = AsyncSystem::new(&refined, n, AsyncConfig::default());
        let budget = Budget { max_bytes: 16 << 20, ..Budget::default() };
        let r = explore_plain(&rv, &budget);
        let a = explore_plain(&asys, &budget);
        println!(
            "  migratory n={n}: rendezvous {:>8}  asynchronous {:>10}",
            r.table_cell(),
            a.table_cell()
        );
    }
    println!();

    println!("== 2. Coherence safety invariants, checked while exploring ==");
    let inv_opts = InvalidateOptions { data_domain: Some(2) };
    let inv = invalidate(&inv_opts);
    let rv = RendezvousSystem::new(&inv, 2);
    let r = ccr_mc::search::explore(
        &rv,
        &Budget::default(),
        props::invalidate_rv_invariant(&inv),
        true,
    );
    println!(
        "  invalidate n=2 with data: {} states, single-writer + sharer-consistency: {:?}",
        r.states, r.outcome
    );
    println!();

    println!("== 3. A broken protocol is caught ==");
    // Mailbox variant whose home *forgets* to answer get: deadlock.
    let mut b = ProtocolBuilder::new("broken");
    let get = b.msg("get");
    let val = b.msg("val");
    let serve = b.home_state("Serve");
    b.home(serve).recv_any(get).goto(serve); // never sends val!
    let idle = b.remote_state("Idle");
    let wait = b.remote_state("Wait");
    b.remote(idle).send(get).goto(wait);
    b.remote(wait).recv(val).goto(idle);
    let broken = b.finish().expect("syntactically fine, semantically broken");
    let rv = RendezvousSystem::new(&broken, 1);
    let r = ccr_mc::search::explore(&rv, &Budget::default(), |_| None, true);
    println!("  outcome: {:?} (the remote waits for a val that never comes)", r.outcome);
    println!();

    println!("== 4. Equation 1 — the machine-checked §4 soundness argument ==");
    for (name, refined) in [
        ("migratory", migratory_refined(&MigratoryOptions::checking())),
        ("invalidate", invalidate_refined(&InvalidateOptions::default())),
    ] {
        let rv = RendezvousSystem::new(&refined.spec, 2);
        let asys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
        let sim = check_simulation(&asys, &rv, &Budget::default());
        println!(
            "  {name}: holds={} ({} transitions: {} stutters, {} rendezvous steps)",
            sim.holds(),
            sim.transitions_checked,
            sim.stutters,
            sim.mapped_steps
        );
    }
    println!();

    println!("== 5. Forward progress (§2.5): no reachable livelock, k = 2 suffices ==");
    for k in [2usize, 3] {
        let refined = migratory_refined(&MigratoryOptions::checking());
        let asys = AsyncSystem::new(&refined, 2, AsyncConfig::with_home_buffer(k));
        let prog = check_progress_default(&asys, &Budget::default());
        println!(
            "  migratory n=2, home buffer k={k}: progress holds={} over {} states",
            prog.holds(),
            prog.states
        );
    }
}
