//! Live status files (`--status` / `--run-dir`, `ccr watch`): the
//! atomic-rename protocol never yields a torn read, and the terminal
//! snapshot agrees with the verify report's exact counts.

use ccr_metrics::jsonval::Json;
use ccr_metrics::status::{RunStatus, StatusWriter};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ccr-watch-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

#[test]
fn concurrent_reader_never_sees_a_torn_or_regressing_snapshot() {
    let dir = tmp_dir("torn");
    let path = dir.join("status.json");
    let writer = StatusWriter::create(&path);
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let writer_path = path.clone();
        scope.spawn(|| {
            let mut status = RunStatus {
                spec: "specs/migratory.ccp".into(),
                phase: "explore/async".into(),
                ..RunStatus::default()
            };
            for i in 0..2_000u64 {
                status.states = i * 17;
                status.transitions = i * 51;
                status.frontier = i % 97;
                status.states_per_sec = i as f64 * 3.25;
                status.elapsed_ms = i;
                status.finished = i == 1_999;
                if status.finished {
                    status.outcome = Some("Complete".into());
                }
                writer.write(&mut status).expect("status write");
            }
            stop.store(true, Ordering::Release);
        });

        let mut last_seq = 0u64;
        let mut reads = 0u64;
        while !stop.load(Ordering::Acquire) || reads == 0 {
            match RunStatus::read(&writer_path) {
                Ok(st) => {
                    // A torn write would fail `parse` inside `read`;
                    // every successful read must also move forward.
                    assert!(
                        st.seq >= last_seq,
                        "snapshot regressed: seq {} after {last_seq}",
                        st.seq
                    );
                    assert_eq!(st.spec, "specs/migratory.ccp");
                    last_seq = st.seq;
                    reads += 1;
                }
                // Only the pre-first-write window may miss the file.
                Err(_) => assert_eq!(last_seq, 0, "status file vanished mid-run"),
            }
        }
        assert!(reads > 0);
    });

    let last = RunStatus::read(&path).expect("final read");
    assert!(last.finished);
    assert_eq!(last.outcome.as_deref(), Some("Complete"));
}

#[test]
fn final_status_agrees_with_the_verify_report_counts() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let dir = tmp_dir("verify");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_ccr"))
        .args(["verify", "specs/migratory.ccp", "-n", "2", "--symmetry", "off", "--run-dir"])
        .arg(&dir)
        .current_dir(root)
        .output()
        .expect("run ccr");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let verify_text =
        std::fs::read_to_string(dir.join("verify.json")).expect("verify.json written");
    let verify = Json::parse(&verify_text).expect("verify.json parses");
    let status = RunStatus::read(&dir.join("status.json")).expect("status.json written");

    assert!(status.finished, "terminal snapshot must be marked finished");
    assert_eq!(status.outcome.as_deref(), Some("Complete"));
    assert_eq!(
        Some(status.states),
        verify.path("asynchronous.states").and_then(Json::as_u64),
        "final status states must equal the verify report's async-level count"
    );
    assert_eq!(
        Some(status.transitions),
        verify.path("asynchronous.transitions").and_then(Json::as_u64),
        "final status transitions must equal the verify report's async-level count"
    );
    assert_eq!(verify.get("holds").and_then(Json::as_bool), Some(true));

    // The same run dir feeds `ccr watch --once` and `ccr report`.
    let watch = std::process::Command::new(env!("CARGO_BIN_EXE_ccr"))
        .arg("watch")
        .arg(dir.join("status.json"))
        .arg("--once")
        .output()
        .expect("run watch");
    assert!(watch.status.success(), "{}", String::from_utf8_lossy(&watch.stderr));
    let line = String::from_utf8_lossy(&watch.stdout);
    assert!(line.contains("finished: Complete"), "{line}");

    let report = std::process::Command::new(env!("CARGO_BIN_EXE_ccr"))
        .arg("report")
        .arg(&dir)
        .arg("--json")
        .output()
        .expect("run report");
    assert!(report.status.success(), "{}", String::from_utf8_lossy(&report.stderr));
    let merged = Json::parse(std::str::from_utf8(&report.stdout).unwrap().trim())
        .expect("report --json emits valid JSON");
    assert_eq!(
        merged.path("verify.asynchronous.states").and_then(Json::as_u64),
        Some(status.states)
    );
    assert_eq!(merged.path("status.states").and_then(Json::as_u64), Some(status.states));
}

#[test]
fn watch_fails_on_a_dead_run_but_tolerates_a_live_writer() {
    let dir = tmp_dir("dead");
    let path = dir.join("status.json");
    // An unfinished snapshot whose writing pid no longer exists: the
    // run died between heartbeats. The watcher must detect it via the
    // recorded pid and exit nonzero instead of polling forever.
    let writer = StatusWriter::create(&path);
    let mut status = RunStatus {
        spec: "specs/migratory.ccp".into(),
        phase: "explore/async".into(),
        states: 1234,
        pid: Some(4_000_000_000), // beyond any real pid space
        ..RunStatus::default()
    };
    writer.write(&mut status).expect("status write");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_ccr"))
        .arg("watch")
        .arg(&path)
        .args(["--interval", "0.05", "--stale-timeout", "0.2"])
        .output()
        .expect("run watch");
    assert!(!out.status.success(), "watch must fail on a dead run");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("run died without finished snapshot"), "{err}");

    // The same snapshot written by a live process (this test) passes
    // the liveness probe; `--once` returns before any staleness check
    // could matter, and a finished snapshot always succeeds.
    status.pid = Some(std::process::id() as u64);
    status.finished = true;
    status.outcome = Some("Complete".into());
    writer.write(&mut status).expect("status write");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_ccr"))
        .arg("watch")
        .arg(&path)
        .args(["--interval", "0.05", "--stale-timeout", "0.2"])
        .output()
        .expect("run watch");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}
