//! `ccr report --json` schema stability: the merged document's
//! top-level shape and the field names downstream tooling keys on are
//! pinned here, so a refactor that renames or drops a key fails a test
//! instead of silently breaking dashboards.

use ccr_metrics::jsonval::Json;
use std::path::{Path, PathBuf};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ccr-report-schema-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

/// Runs a real verify into a run dir and returns the parsed
/// `ccr report --json` document.
fn report_doc(dir: &Path) -> Json {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_ccr"))
        .args(["verify", "specs/migratory.ccp", "-n", "2", "--run-dir"])
        .arg(dir)
        .current_dir(root)
        .output()
        .expect("run ccr");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let report = std::process::Command::new(env!("CARGO_BIN_EXE_ccr"))
        .arg("report")
        .arg(dir)
        .arg("--json")
        .output()
        .expect("run report");
    assert!(report.status.success(), "{}", String::from_utf8_lossy(&report.stderr));
    Json::parse(std::str::from_utf8(&report.stdout).unwrap().trim())
        .expect("report --json emits valid JSON")
}

#[test]
fn report_json_top_level_shape_is_stable() {
    let dir = tmp_dir("shape");
    let doc = report_doc(&dir);
    let keys: Vec<&str> =
        doc.as_object().expect("top-level object").iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        ["run_dir", "verify", "metrics", "status", "profile", "trace_events", "timeline"],
        "top-level key set and order are the report's public schema"
    );
}

#[test]
fn report_json_nested_fields_downstream_tooling_keys_on() {
    let dir = tmp_dir("fields");
    let doc = report_doc(&dir);

    // Verification block: the holds verdict plus both levels' counts.
    assert_eq!(doc.path("verify.holds").and_then(Json::as_bool), Some(true));
    for level in ["rendezvous", "asynchronous"] {
        for field in ["states", "transitions"] {
            assert!(
                doc.path(&format!("verify.{level}.{field}")).and_then(Json::as_u64).is_some(),
                "verify.{level}.{field} missing"
            );
        }
    }

    // Status block: terminal snapshot with exact counts, monotone seq,
    // and the writer pid (`ccr watch` dead-run detection keys on it).
    assert_eq!(doc.path("status.finished").and_then(Json::as_bool), Some(true));
    assert_eq!(doc.path("status.outcome").and_then(Json::as_str), Some("Complete"));
    for field in ["states", "transitions", "seq", "pid", "elapsed_ms"] {
        assert!(
            doc.path(&format!("status.{field}")).and_then(Json::as_u64).is_some(),
            "status.{field} missing"
        );
    }

    // Metrics block: deterministic counters plus the nondeterministic
    // tag list (the diff gate reads both).
    assert!(doc.path("metrics.counters.mc_states_total").and_then(Json::as_u64).is_some());
    assert!(doc.path("metrics.nondeterministic").and_then(Json::as_array).is_some());

    // Profile block: per-worker span attribution.
    assert!(doc.path("profile.workers").and_then(Json::as_array).is_some());

    // Trace block: per-variant event counts (every bundle ends with an
    // Outcome event).
    assert!(doc.path("trace_events.Outcome").and_then(Json::as_u64).is_some());

    // Timeline block: the flight-recorder analysis schema.
    for field in ["spec", "interval_ms", "duration_ms", "samples"] {
        assert!(doc.path(&format!("timeline.{field}")).is_some(), "timeline.{field} missing");
    }
    let phases = doc.path("timeline.phases").and_then(Json::as_array).expect("timeline.phases");
    assert!(!phases.is_empty(), "verify records its phases");
    for field in
        ["name", "start_ms", "end_ms", "samples", "mean_states_per_sec", "peak_states_per_sec"]
    {
        assert!(phases[0].get(field).is_some(), "timeline.phases[].{field} missing");
    }
    assert!(doc.path("timeline.stalls").and_then(Json::as_array).is_some());
}

#[test]
fn report_json_marks_absent_artifacts_null_instead_of_dropping_keys() {
    // A run dir holding only a status file still reports the full key
    // set, with nulls for the missing artifacts — consumers can rely on
    // key presence without existence checks.
    let dir = tmp_dir("sparse");
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_ccr"))
        .args(["verify", "specs/migratory.ccp", "-n", "2", "--status"])
        .arg(dir.join("status.json"))
        .current_dir(root)
        .output()
        .expect("run ccr");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let report = std::process::Command::new(env!("CARGO_BIN_EXE_ccr"))
        .arg("report")
        .arg(&dir)
        .arg("--json")
        .output()
        .expect("run report");
    assert!(report.status.success(), "{}", String::from_utf8_lossy(&report.stderr));
    let doc = Json::parse(std::str::from_utf8(&report.stdout).unwrap().trim())
        .expect("report --json emits valid JSON");
    let keys: Vec<&str> =
        doc.as_object().expect("top-level object").iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        ["run_dir", "verify", "metrics", "status", "profile", "trace_events", "timeline"]
    );
    for absent in ["verify", "metrics", "profile", "timeline"] {
        assert!(matches!(doc.get(absent), Some(Json::Null)), "{absent} must be null, not dropped");
    }
    assert!(doc.path("status.seq").and_then(Json::as_u64).is_some());
}
