//! Serial/parallel equivalence over every shipped spec: for each `.ccp`
//! file under `specs/` the multi-threaded engine must report exactly the
//! serial states, transitions, and outcome at 1, 2, and 4 threads — on
//! the rendezvous level and (where the spec refines) on the asynchronous
//! refinement. For the deliberately broken spec the violation must be
//! classified identically, deterministically across thread counts, and
//! its counterexample trail must replay.

use ccr_core::refine::{refine, RefineOptions};
use ccr_core::text::parse_validated;
use ccr_mc::search::{explore, Budget, SearchObserver};
use ccr_mc::{explore_parallel, explore_parallel_traced_observed, ParallelConfig, Reduced};
use ccr_runtime::asynch::{AsyncConfig, AsyncSystem};
use ccr_runtime::rendezvous::RendezvousSystem;
use ccr_runtime::TransitionSystem;
use std::path::Path;

const THREADS: [usize; 3] = [1, 2, 4];

/// Every spec shipped under `specs/`, split by health: the broken one
/// deadlocks at the rendezvous level and never refines cleanly in the
/// verify pipeline, so it gets the violation-equivalence treatment.
const HEALTHY: [&str; 5] =
    ["invalidate.ccp", "migratory.ccp", "migratory_gated.ccp", "token.ccp", "update.ccp"];
const BROKEN: &str = "migratory_broken.ccp";

fn load(name: &str) -> ccr_core::process::ProtocolSpec {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("specs").join(name);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    parse_validated(&text).unwrap_or_else(|e| panic!("{name}: {e}"))
}

/// Serial exploration vs. `explore_parallel` at each thread count:
/// states, transitions, and outcome must match exactly.
fn assert_matches_serial<T>(sys: &T, budget: &Budget, context: &str)
where
    T: TransitionSystem + Sync,
    T::State: Send,
{
    let serial = explore(sys, budget, |_| None, true);
    for threads in THREADS {
        let par = explore_parallel(sys, budget, |_| None, true, &ParallelConfig::threads(threads));
        assert_eq!(par.states, serial.states, "{context} t={threads}: states");
        assert_eq!(par.transitions, serial.transitions, "{context} t={threads}: transitions");
        assert_eq!(par.outcome, serial.outcome, "{context} t={threads}: outcome");
        assert_eq!(par.threads, threads, "{context}: report must carry the thread count");
        assert!(!par.probabilistic, "{context}: exact mode must not be flagged probabilistic");
    }
}

#[test]
fn healthy_specs_rendezvous_level_matches_serial() {
    let budget = Budget::states(500_000);
    for name in HEALTHY {
        let spec = load(name);
        for n in [2u32, 3] {
            let sys = RendezvousSystem::new(&spec, n);
            assert_matches_serial(&sys, &budget, &format!("{name} rv n={n}"));
        }
    }
}

#[test]
fn healthy_specs_async_refinement_matches_serial() {
    let budget = Budget::states(500_000);
    for name in HEALTHY {
        let spec = load(name);
        let refined = refine(&spec, &RefineOptions::default())
            .unwrap_or_else(|e| panic!("{name}: refine: {e}"));
        let sys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
        assert_matches_serial(&sys, &budget, &format!("{name} async n=2"));
    }
}

#[test]
fn broken_spec_same_classification_and_replayable_trail_at_every_thread_count() {
    let spec = load(BROKEN);
    let budget = Budget::states(500_000);
    let sys = RendezvousSystem::new(&spec, 2);
    let serial = explore(&sys, &budget, |_| None, true);
    assert_eq!(serial.outcome, ccr_mc::Outcome::Deadlock, "broken spec must deadlock serially");

    let mut counts = Vec::new();
    for threads in THREADS {
        let mut null = ccr_trace::NullSink;
        let mut obs = SearchObserver::new(&mut null);
        let par = explore_parallel_traced_observed(
            &sys,
            &budget,
            |_| None,
            true,
            &ParallelConfig::threads(threads),
            &mut obs,
        );
        // Same classification as the serial checker.
        assert_eq!(par.outcome, serial.outcome, "t={threads}: outcome");
        counts.push((par.states, par.transitions, par.trail.clone()));

        // The counterexample must replay step for step on a fresh system
        // and land in a state that really has no successors.
        let trail = par.trail.as_ref().expect("deadlock must carry a trail");
        let end = ccr_mc::replay_trail(&sys, trail)
            .unwrap_or_else(|e| panic!("t={threads}: trail replay: {e}"));
        let mut succs = Vec::new();
        sys.successors(&end, &mut succs).expect("replayed state must execute");
        assert!(succs.is_empty(), "t={threads}: replayed trail must end in a deadlock");
    }
    // Violating runs are level-deterministic: identical counts and an
    // identical winning trail no matter how many workers raced.
    for w in counts.windows(2) {
        assert_eq!(w[0], w[1], "violating-run reports must not depend on the thread count");
    }
}

/// Torture case for the asynchronous termination detection: the broken
/// spec aborts mid-level when the deadlock is found, which is exactly
/// when the decider/epoch protocol is easiest to race — workers may be
/// shipping cross-shard batches, draining late arrivals, or parked in a
/// detection round when the stop lands. Every combination of thread
/// count (1/2/4/8 — including oversubscription past the shard-stripe
/// width) and symmetry mode (full space vs. quotient), repeated to give
/// interleavings a chance to differ, must agree byte for byte with every
/// other parallel run of the same space — same states, same transitions,
/// same winning trail — carry the serial outcome, and produce a
/// counterexample that replays step for step on the *unreduced* system
/// into a genuinely stuck state. (The counts legitimately exceed the
/// serial ones: a violating parallel run finishes its level to stay
/// deterministic, the serial engine stops at the first hit.)
#[test]
fn termination_detection_torture_on_the_broken_spec() {
    const TORTURE_THREADS: [usize; 4] = [1, 2, 4, 8];
    const REPEATS: usize = 3;
    let spec = load(BROKEN);
    let budget = Budget::states(500_000);
    for n in [2u32, 3] {
        let sys = RendezvousSystem::new(&spec, n);
        for symmetry in [false, true] {
            // The serial run of the same (reduced or full) space is the
            // byte-exact baseline.
            let (serial, context) = if symmetry {
                (explore(&Reduced::new(&sys), &budget, |_| None, true), format!("n={n} sym"))
            } else {
                (explore(&sys, &budget, |_| None, true), format!("n={n} full"))
            };
            assert_eq!(serial.outcome, ccr_mc::Outcome::Deadlock, "{context}: baseline");
            let mut first: Option<(usize, usize, Option<Vec<ccr_runtime::Label>>)> = None;
            for threads in TORTURE_THREADS {
                for rep in 0..REPEATS {
                    let ctx = format!("{context} t={threads} rep={rep}");
                    let mut null = ccr_trace::NullSink;
                    let mut obs = SearchObserver::new(&mut null);
                    let cfg = ParallelConfig::threads(threads);
                    let par = if symmetry {
                        explore_parallel_traced_observed(
                            &Reduced::new(&sys),
                            &budget,
                            |_| None,
                            true,
                            &cfg,
                            &mut obs,
                        )
                    } else {
                        explore_parallel_traced_observed(
                            &sys,
                            &budget,
                            |_| None,
                            true,
                            &cfg,
                            &mut obs,
                        )
                    };
                    assert_eq!(par.outcome, serial.outcome, "{ctx}: outcome");
                    let row = (par.states, par.transitions, par.trail.clone());
                    match &first {
                        None => first = Some(row),
                        Some(f) => assert_eq!(
                            f, &row,
                            "{ctx}: parallel violating runs must be byte-identical"
                        ),
                    }
                    // Quotient trails hold concrete representatives, so
                    // both modes replay on the unreduced system.
                    let trail = par.trail.as_ref().expect("deadlock must carry a trail");
                    let end = replay_on(&sys, trail, &ctx);
                    let mut succs = Vec::new();
                    sys.successors(&end, &mut succs).expect("replayed state must execute");
                    assert!(succs.is_empty(), "{ctx}: trail must end in a deadlock");
                }
            }
        }
    }
}

fn replay_on<T: TransitionSystem>(sys: &T, trail: &[ccr_runtime::Label], ctx: &str) -> T::State {
    ccr_mc::replay_trail(sys, trail).unwrap_or_else(|e| panic!("{ctx}: trail replay: {e}"))
}
