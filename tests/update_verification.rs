//! End-to-end verification of the write-update protocol extension:
//! reachability, sharer-agreement safety, Equation 1 and progress.

use ccr_mc::progress::check_progress_default;
use ccr_mc::search::{explore, Budget};
use ccr_mc::simrel::check_simulation;
use ccr_protocols::update::{update, update_refined, update_rv_invariant, UpdateOptions};
use ccr_runtime::asynch::{AsyncConfig, AsyncSystem};
use ccr_runtime::rendezvous::RendezvousSystem;

#[test]
fn rendezvous_reachability_and_sharer_agreement() {
    let spec = update(&UpdateOptions { data_domain: Some(2) });
    for n in [1u32, 2, 3] {
        let sys = RendezvousSystem::new(&spec, n);
        let r = explore(&sys, &Budget::default(), update_rv_invariant(&spec), true);
        assert!(r.outcome.is_complete(), "n={n}: {:?}", r.outcome);
        println!("rendezvous update n={n}: {} states", r.states);
    }
}

#[test]
fn async_reachability_and_deadlock_freedom() {
    let refined = update_refined(&UpdateOptions { data_domain: Some(2) });
    for n in [1u32, 2] {
        let sys = AsyncSystem::new(&refined, n, AsyncConfig::default());
        let r = explore(&sys, &Budget::default(), |_| None, true);
        assert!(r.outcome.is_complete(), "n={n}: {:?}", r.outcome);
        println!("async update n={n}: {} states", r.states);
    }
}

#[test]
fn equation_one_holds_for_update() {
    let refined = update_refined(&UpdateOptions { data_domain: Some(2) });
    let rv = RendezvousSystem::new(&refined.spec, 2);
    let asys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
    let r = check_simulation(&asys, &rv, &Budget::default());
    assert!(r.holds(), "{r:?}");
}

#[test]
fn progress_holds_for_update() {
    let refined = update_refined(&UpdateOptions::default());
    let asys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
    let r = check_progress_default(&asys, &Budget::default());
    assert!(r.holds(), "{r:?}");
}

#[test]
fn update_runs_on_the_dsm_machine() {
    use ccr_dsm::machine::{Machine, MachineConfig};
    use ccr_dsm::workload::ReadMostly;
    use ccr_runtime::sched::RandomSched;

    let refined = update_refined(&UpdateOptions { data_domain: Some(8) });
    let mut config = MachineConfig::standard(&refined, 4, 50_000);
    // Ops for the update protocol: read acquisitions and committed writes.
    config.ops.push(refined.spec.msg_by_name("upd").unwrap());
    let machine = Machine::new(&refined, config);
    let mut wl = ReadMostly::new(31, 0.3, 0.7, 0.2);
    let mut sched = RandomSched::new(32);
    let report = machine.run("derived", &mut wl, &mut sched).expect("run");
    assert!(!report.deadlocked);
    assert!(report.ops > 100, "{report:?}");
}
