//! End-to-end checks for the fault-injection subsystem: protocols complete
//! workloads safely under seeded drop/duplicate faults, the model checker
//! proves safety and progress under a bounded fault budget, fault events
//! reach the trace, and a run with faults disabled stays byte-identical to
//! a plain run.

use ccr_core::ids::{ProcessId, RemoteId};
use ccr_core::refine::{refine, RefineOptions};
use ccr_core::text::parse_validated;
use ccr_dsm::machine::{Machine, MachineConfig};
use ccr_dsm::metrics::MachineReport;
use ccr_dsm::workload::Migrating;
use ccr_faults::{FaultKind, FaultPlan, FaultRates, FaultSpec, ScriptedFault};
use ccr_mc::faultmode::check_fault_closure;
use ccr_mc::report::Outcome;
use ccr_mc::search::Budget;
use ccr_mc::trace::{explore_traced, replay_trail};
use ccr_protocols::invalidate::{invalidate_refined, InvalidateOptions};
use ccr_protocols::migratory::{migratory_refined, MigratoryOptions};
use ccr_protocols::props::migratory_async_invariant;
use ccr_runtime::asynch::{AsyncConfig, AsyncSystem};
use ccr_runtime::sched::RandomSched;
use ccr_runtime::system::TransitionSystem;
use ccr_runtime::FaultHarness;
use ccr_trace::{JsonlSink, NullSink};
use std::path::Path;

/// The acceptance-criterion fault load: 5% drops, 2% duplicates.
const RATES: FaultRates = FaultRates { drop: 0.05, dup: 0.02, reorder: 0.0, delay: 0.0 };
const SEED: u64 = 7;

fn spec_text(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("specs").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Runs `refined` for `steps` machine steps under `rates`, returning the
/// report and the harness's leftover recovery debt.
fn faulted_run(
    refined: &ccr_core::refine::RefinedProtocol,
    rates: FaultRates,
    steps: u64,
) -> (MachineReport, usize) {
    let config = MachineConfig::standard(refined, 3, steps);
    let machine = Machine::new(refined, config);
    let mut wl = Migrating::new(SEED, 0.8, 0.5);
    let mut sched = RandomSched::new(SEED);
    let mut harness = FaultHarness::new(FaultPlan::new(FaultSpec::with_rates(rates), SEED));
    let mut sink = NullSink;
    let report = machine
        .run_faulted("faulted", &mut wl, &mut sched, &mut harness, &mut sink)
        .expect("faults must never surface as protocol errors");
    let pending = harness.pending_recoveries();
    let stats = *harness.stats();
    (report.with_faults(stats), pending)
}

#[test]
fn migratory_completes_workload_under_drops_and_dups() {
    let refined = migratory_refined(&MigratoryOptions::default());
    let (report, pending) = faulted_run(&refined, RATES, 6000);
    assert!(!report.deadlocked, "lossy network must not wedge the machine");
    assert!(report.ops > 0, "acquisitions must still complete: {}", report.summary());
    let faults = report.faults.expect("harness stats attached");
    assert!(faults.drops > 0, "at 5% the run must actually lose messages");
    // `drops` counts events (a lost retransmission drops the same message
    // again); every lost *message* is recovered or still on a timer.
    assert!(
        faults.recovered + pending as u64 <= faults.drops,
        "recovered={} pending={pending} drops={}",
        faults.recovered,
        faults.drops
    );
    assert!(faults.recovered > 0, "retransmission must actually restore messages");
    assert!(faults.retransmits >= faults.recovered);
}

#[test]
fn invalidate_completes_workload_under_drops_and_dups() {
    let refined = invalidate_refined(&InvalidateOptions::default());
    let (report, pending) = faulted_run(&refined, RATES, 6000);
    assert!(!report.deadlocked, "lossy network must not wedge the machine");
    assert!(report.ops > 0, "acquisitions must still complete: {}", report.summary());
    let faults = report.faults.expect("harness stats attached");
    assert!(faults.drops > 0);
    assert!(faults.recovered + pending as u64 <= faults.drops);
    assert!(faults.recovered > 0);
}

#[test]
fn faults_cost_messages_but_not_safety() {
    let refined = migratory_refined(&MigratoryOptions::default());
    let (clean, _) = faulted_run(&refined, FaultRates::default(), 6000);
    let (faulted, _) = faulted_run(&refined, RATES, 6000);
    let degr = faulted.degradation_vs(&clean).expect("both runs completed operations");
    assert!(degr >= 1.0, "recovery traffic cannot make acquisitions cheaper: {degr:.3}");
}

#[test]
fn fault_closure_holds_for_budget_two_on_migratory() {
    let opts = MigratoryOptions::default();
    let refined = migratory_refined(&opts);
    let spec = ccr_protocols::migratory::migratory(&opts);
    let sys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
    let report =
        check_fault_closure(&sys, 2, &Budget::states(2_000_000), migratory_async_invariant(&spec));
    assert!(
        report.holds(),
        "safety and progress must survive any two wire faults: {:?} / {:?}",
        report.explore.outcome,
        report.progress
    );
    // The adversary genuinely enlarges the state space: the closure at
    // budget 2 reaches strictly more states than the fault-free system.
    let plain = explore_traced(&sys, &Budget::states(2_000_000), |_| None, true);
    assert!(matches!(plain.outcome, Outcome::Complete));
    assert!(
        report.explore.states > plain.states,
        "closure ({}) must exceed the base reachable set ({})",
        report.explore.states,
        plain.states
    );
}

#[test]
fn scripted_faults_reach_the_trace_and_recover() {
    let refined = migratory_refined(&MigratoryOptions::default());
    let config = MachineConfig::standard(&refined, 3, 3000);
    let machine = Machine::new(&refined, config);
    let mut plan = FaultPlan::inactive();
    // A message is not guaranteed in flight at any single step, so script a
    // window of drops on both sides of the r0 link; at least one connects.
    for step in 10..60 {
        for (from, to) in [
            (ProcessId::Remote(RemoteId(0)), ProcessId::Home),
            (ProcessId::Home, ProcessId::Remote(RemoteId(0))),
        ] {
            plan.script(ScriptedFault { step, from, to, kind: FaultKind::Drop });
        }
    }
    let mut harness = FaultHarness::new(plan);
    let mut wl = Migrating::new(SEED, 0.8, 0.5);
    let mut sched = RandomSched::new(SEED);
    let mut sink = JsonlSink::new(Vec::new());
    let report =
        machine.run_faulted("scripted", &mut wl, &mut sched, &mut harness, &mut sink).expect("run");
    assert!(!report.deadlocked);
    let stats = harness.stats();
    assert!(stats.scripted > 0, "the scripted window must hit an in-flight message");
    assert!(stats.recovered > 0, "the dropped message must come back by retransmission");
    let text = String::from_utf8(sink.into_inner().expect("vec sink")).expect("utf8");
    assert!(text.contains("\"FaultInjected\""), "trace must carry injection events");
    assert!(text.contains("\"RetransmitTimeout\""), "trace must carry recovery events");
    assert!(text.contains("\"kind\":\"drop\""), "{text}");
}

#[test]
fn inactive_plan_is_byte_identical_to_a_plain_run() {
    let refined = migratory_refined(&MigratoryOptions::default());
    let run = |faulted: bool| -> Vec<u8> {
        let config = MachineConfig::standard(&refined, 3, 1500);
        let machine = Machine::new(&refined, config);
        let mut wl = Migrating::new(SEED, 0.8, 0.5);
        let mut sched = RandomSched::new(SEED);
        let mut sink = JsonlSink::new(Vec::new());
        if faulted {
            let mut harness = FaultHarness::new(FaultPlan::inactive());
            machine
                .run_faulted("derived", &mut wl, &mut sched, &mut harness, &mut sink)
                .expect("run");
        } else {
            machine.run_observed("derived", &mut wl, &mut sched, &mut sink).expect("run");
        }
        sink.into_inner().expect("vec sink")
    };
    let plain = run(false);
    let inert = run(true);
    assert!(!plain.is_empty());
    assert_eq!(plain, inert, "fault handling must be zero-cost when off");
}

/// The regression the observability pipeline promises: the shipped broken
/// spec yields a deadlock witness, and the witness replays to a genuinely
/// stuck asynchronous state.
#[test]
fn broken_spec_yields_replayable_async_deadlock_witness() {
    let spec = parse_validated(&spec_text("migratory_broken.ccp")).expect("parse");
    let refined = refine(&spec, &RefineOptions::default()).expect("refine");
    let sys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
    let report = explore_traced(&sys, &Budget::states(2_000_000), |_| None, true);
    assert!(
        matches!(report.outcome, Outcome::Deadlock),
        "broken spec must deadlock: {:?}",
        report.outcome
    );
    let trail = report.trail.as_ref().expect("deadlock must carry a witness trail");
    assert!(!trail.is_empty());
    let end = replay_trail(&sys, trail).expect("witness must replay");
    let mut succ = Vec::new();
    sys.successors(&end, &mut succ).expect("successors");
    assert!(succ.is_empty(), "replayed witness must end in a stuck state");
}
