//! The `.ccp` spec files shipped under `specs/` stay in sync with the
//! protocol constructors, parse cleanly, validate, and verify end to end.

use ccr_core::refine::{refine, RefineOptions};
use ccr_core::text::{parse_validated, to_text};
use ccr_mc::search::Budget;
use ccr_mc::simrel::check_simulation;
use ccr_protocols::invalidate::{invalidate, InvalidateOptions};
use ccr_protocols::migratory::{migratory, MigratoryOptions};
use ccr_protocols::token::token;
use ccr_protocols::update::{update, UpdateOptions};
use ccr_runtime::asynch::{AsyncConfig, AsyncSystem};
use ccr_runtime::rendezvous::RendezvousSystem;
use std::path::Path;

fn read(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("specs").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn shipped_specs_match_constructors() {
    assert_eq!(read("token.ccp"), to_text(&token()));
    assert_eq!(read("migratory.ccp"), to_text(&migratory(&MigratoryOptions::checking())));
    assert_eq!(
        read("migratory_gated.ccp"),
        to_text(&migratory(&MigratoryOptions { data_domain: Some(2), cpu_gate: true }))
    );
    assert_eq!(
        read("invalidate.ccp"),
        to_text(&invalidate(&InvalidateOptions { data_domain: Some(2) }))
    );
    assert_eq!(read("update.ccp"), to_text(&update(&UpdateOptions { data_domain: Some(2) })));
}

#[test]
fn shipped_specs_parse_and_validate() {
    for name in
        ["token.ccp", "migratory.ccp", "migratory_gated.ccp", "invalidate.ccp", "update.ccp"]
    {
        let spec = parse_validated(&read(name)).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!spec.name.is_empty());
    }
}

#[test]
fn a_parsed_shipped_spec_verifies_end_to_end() {
    let spec = parse_validated(&read("migratory.ccp")).unwrap();
    let refined = refine(&spec, &RefineOptions::default()).unwrap();
    assert_eq!(refined.pairs.len(), 2);
    let rv = RendezvousSystem::new(&spec, 2);
    let asys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
    let sim = check_simulation(&asys, &rv, &Budget::default());
    assert!(sim.holds(), "{sim:?}");
}

#[test]
fn cli_binary_verifies_a_shipped_spec() {
    // Drive the actual `ccr` binary if it has been built; skip silently in
    // bare `cargo test` runs where only the test profile exists.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let exe = root.join("target/release/ccr");
    if !exe.exists() {
        eprintln!("skipping: {} not built", exe.display());
        return;
    }
    let out = std::process::Command::new(&exe)
        .args(["verify", "specs/token.ccp", "-n", "2"])
        .current_dir(root)
        .output()
        .expect("spawn ccr");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Equation 1: holds"), "{stdout}");
    assert!(stdout.contains("forward progress: holds"), "{stdout}");
}
