//! The `.ccp` spec files shipped under `specs/` stay in sync with the
//! protocol constructors, parse cleanly, validate, and verify end to end.

use ccr_core::refine::{refine, RefineOptions};
use ccr_core::text::{parse_validated, to_text};
use ccr_mc::search::Budget;
use ccr_mc::simrel::check_simulation;
use ccr_protocols::invalidate::{invalidate, InvalidateOptions};
use ccr_protocols::migratory::{migratory, MigratoryOptions};
use ccr_protocols::token::token;
use ccr_protocols::update::{update, UpdateOptions};
use ccr_protocols::zoo::{zoo_chain, zoo_unsound_pair};
use ccr_runtime::asynch::{AsyncConfig, AsyncSystem};
use ccr_runtime::rendezvous::RendezvousSystem;
use std::path::Path;

fn read(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("specs").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn shipped_specs_match_constructors() {
    assert_eq!(read("token.ccp"), to_text(&token()));
    assert_eq!(read("migratory.ccp"), to_text(&migratory(&MigratoryOptions::checking())));
    assert_eq!(
        read("migratory_gated.ccp"),
        to_text(&migratory(&MigratoryOptions { data_domain: Some(2), cpu_gate: true }))
    );
    assert_eq!(
        read("invalidate.ccp"),
        to_text(&invalidate(&InvalidateOptions { data_domain: Some(2) }))
    );
    assert_eq!(read("update.ccp"), to_text(&update(&UpdateOptions { data_domain: Some(2) })));
    assert_eq!(read("zoo_chain.ccp"), to_text(&zoo_chain()));
    assert_eq!(read("zoo_unsound_pair.ccp"), to_text(&zoo_unsound_pair()));
}

#[test]
fn shipped_specs_parse_and_validate() {
    for name in [
        "token.ccp",
        "migratory.ccp",
        "migratory_gated.ccp",
        "invalidate.ccp",
        "update.ccp",
        "zoo_chain.ccp",
        "zoo_unsound_pair.ccp",
    ] {
        let spec = parse_validated(&read(name)).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!spec.name.is_empty());
    }
}

#[test]
fn a_parsed_shipped_spec_verifies_end_to_end() {
    let spec = parse_validated(&read("migratory.ccp")).unwrap();
    let refined = refine(&spec, &RefineOptions::default()).unwrap();
    assert_eq!(refined.pairs.len(), 2);
    let rv = RendezvousSystem::new(&spec, 2);
    let asys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
    let sim = check_simulation(&asys, &rv, &Budget::default());
    assert!(sim.holds(), "{sim:?}");
}

/// The fuzzing counterexample (zoo seed 7, index 34, shrunk): the
/// detector used to pair `(m1, m0)` even though the remote sends `m0`
/// spontaneously, and the derived executor trapped on an unexpected ack.
/// Pinned: no pair may be accepted, and the full differential fuzz
/// pipeline (Equation 1, serial/parallel/symmetry cross-check) must pass.
#[test]
fn zoo_unsound_pair_regression() {
    let spec = parse_validated(&read("zoo_unsound_pair.ccp")).unwrap();
    let refined = refine(&spec, &RefineOptions::default()).unwrap();
    assert!(refined.pairs.is_empty(), "unsound pair re-accepted: {:?}", refined.pairs);
    let verdict = ccr_mc::run_spec(&spec, &ccr_mc::FuzzConfig::default());
    assert!(verdict.passed(), "pipeline failure: {:?}", verdict.failure);
}

/// The curated zoo member: a 3-message passive chain behind one optimized
/// request hop. Verifies completely (safety, Equation 1, progress).
#[test]
fn zoo_chain_verifies_end_to_end() {
    let spec = parse_validated(&read("zoo_chain.ccp")).unwrap();
    let refined = refine(&spec, &RefineOptions::default()).unwrap();
    assert_eq!(refined.pairs.len(), 1);
    let rv = RendezvousSystem::new(&spec, 2);
    let asys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
    let sim = check_simulation(&asys, &rv, &Budget::default());
    assert!(sim.holds(), "{sim:?}");
    let verdict = ccr_mc::run_spec(&spec, &ccr_mc::FuzzConfig::default());
    assert!(verdict.passed(), "pipeline failure: {:?}", verdict.failure);
    assert_eq!(verdict.progress_holds, Some(true));
    assert_eq!(verdict.fault_holds, Some(true));
}

#[test]
fn cli_binary_verifies_a_shipped_spec() {
    // Drive the actual `ccr` binary if it has been built; skip silently in
    // bare `cargo test` runs where only the test profile exists.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let exe = root.join("target/release/ccr");
    if !exe.exists() {
        eprintln!("skipping: {} not built", exe.display());
        return;
    }
    let out = std::process::Command::new(&exe)
        .args(["verify", "specs/token.ccp", "-n", "2"])
        .current_dir(root)
        .output()
        .expect("spawn ccr");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Equation 1: holds"), "{stdout}");
    assert!(stdout.contains("forward progress: holds"), "{stdout}");
}
