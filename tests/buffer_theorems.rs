//! The §6 buffer-sizing claims as executable theorems.
//!
//! * `k = 2` suffices for system-wide progress (weak fairness) — checked
//!   exhaustively via the livelock analysis;
//! * a buffer of `n + 2` (one slot per remote, plus the progress and ack
//!   slots) makes nacks impossible, because each remote has at most one
//!   outstanding request — checked exhaustively by asserting no reachable
//!   transition emits a nack;
//! * below that size, nacks occur.

use ccr_core::refine::{refine, RefineOptions};
use ccr_mc::progress::check_progress_default;
use ccr_mc::search::Budget;
use ccr_protocols::migratory::{migratory_refined, MigratoryOptions};
use ccr_protocols::token::token;
use ccr_runtime::asynch::{AsyncConfig, AsyncSystem};
use ccr_runtime::{Label, TransitionSystem};

/// Explores the full reachable space and reports whether any transition
/// emits a nack.
fn any_nack_reachable(sys: &AsyncSystem<'_>) -> bool {
    use std::collections::VecDeque;
    let mut seen = std::collections::HashSet::new();
    let mut frontier = VecDeque::new();
    let init = sys.initial();
    seen.insert(sys.encoded(&init));
    frontier.push_back(init);
    let mut succs: Vec<(Label, _)> = Vec::new();
    while let Some(s) = frontier.pop_front() {
        sys.successors(&s, &mut succs).unwrap();
        for (label, next) in succs.drain(..) {
            if label.emissions().any(|m| m.is_nack) {
                return true;
            }
            let enc = sys.encoded(&next);
            if seen.insert(enc) {
                frontier.push_back(next);
            }
        }
    }
    false
}

#[test]
fn minimal_buffer_preserves_progress_for_all_protocols() {
    let tok = refine(&token(), &RefineOptions::default()).unwrap();
    let mig = migratory_refined(&MigratoryOptions::checking());
    for (name, refined) in [("token", &tok), ("migratory", &mig)] {
        for n in [2u32, 3] {
            let sys = AsyncSystem::new(refined, n, AsyncConfig::default());
            let r = check_progress_default(&sys, &Budget::default());
            assert!(r.holds(), "{name} n={n}: {r:?}");
        }
    }
}

#[test]
fn n_plus_two_buffer_eliminates_nacks() {
    let refined = migratory_refined(&MigratoryOptions::checking());
    for n in [2u32, 3] {
        let sys = AsyncSystem::new(&refined, n, AsyncConfig::with_home_buffer(n as usize + 2));
        assert!(!any_nack_reachable(&sys), "n={n}: no nack should be reachable with k = n + 2");
    }
}

#[test]
fn small_buffer_does_produce_nacks() {
    // Sanity for the previous theorem: with k = 2 and three contenders,
    // nacks are reachable.
    let refined = migratory_refined(&MigratoryOptions::checking());
    let sys = AsyncSystem::new(&refined, 3, AsyncConfig::default());
    assert!(any_nack_reachable(&sys));
}

#[test]
fn progress_holds_across_buffer_sizes() {
    let refined = migratory_refined(&MigratoryOptions::checking());
    for k in [2usize, 3, 4, 6] {
        let sys = AsyncSystem::new(&refined, 2, AsyncConfig::with_home_buffer(k));
        let r = check_progress_default(&sys, &Budget::default());
        assert!(r.holds(), "k={k}: {r:?}");
    }
}
