//! Profiler guarantees (see docs/observability.md, "Profiling and live
//! runs"):
//!
//! * profiling off is free *and invisible*: byte-identical traces and
//!   identical deterministic metrics snapshots either way;
//! * span *counts* are deterministic: compute counts states, encode and
//!   insert count transitions, so they match the serial engine at every
//!   thread count on every shipped spec (timings are wall-clock and
//!   schedule-dependent — only the counts are pinned);
//! * the folded-stack encoding round-trips.

use ccr_bench::diff::{diff_strs, DiffOptions};
use ccr_core::text::parse_validated;
use ccr_mc::parallel::explore_parallel_observed;
use ccr_mc::search::{explore_observed, Budget, SearchObserver};
use ccr_mc::ParallelConfig;
use ccr_metrics::profile::{parse_folded, ProfileAgg, Profiler, SpanKind};
use ccr_metrics::Registry;
use ccr_runtime::rendezvous::RendezvousSystem;
use ccr_trace::JsonlSink;
use std::path::Path;

/// Every spec shipped under `specs/`. All of them — including the
/// deliberately broken one — explore their full reachable set when no
/// invariant or deadlock check is armed, so the deterministic span
/// counts are comparable across engines on each.
const SHIPPED_SPECS: [&str; 6] = [
    "invalidate.ccp",
    "migratory.ccp",
    "migratory_broken.ccp",
    "migratory_gated.ccp",
    "token.ccp",
    "update.ccp",
];

fn spec_text(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("specs").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// One traced, metered exploration of the migratory rendezvous space,
/// with or without a live profiler. Returns (trace bytes, snapshot
/// JSON).
fn traced_metered_run(profile: bool) -> (Vec<u8>, String) {
    let spec = parse_validated(&spec_text("migratory.ccp")).expect("parse");
    let sys = RendezvousSystem::new(&spec, 3);
    let registry = Registry::new();
    let profiler = if profile { Profiler::new() } else { Profiler::disabled() };
    let mut sink = JsonlSink::new(Vec::new());
    {
        let mut obs = SearchObserver::with_metrics(&mut sink, registry.clone())
            .with_profiler(profiler.clone());
        explore_observed(&sys, &Budget::default(), |_| None, false, &mut obs);
    }
    profiler.publish(&registry);
    (sink.into_inner().expect("vec sink"), registry.snapshot().to_json())
}

#[test]
fn profiling_off_is_invisible_in_traces_and_deterministic_snapshots() {
    let (trace_off, snap_off) = traced_metered_run(false);
    let (trace_on, snap_on) = traced_metered_run(true);
    assert!(!trace_off.is_empty());
    assert_eq!(trace_off, trace_on, "profiling must not perturb the trace stream byte for byte");
    // The profiler publishes only nondeterministic-tagged counters, so
    // the deterministic view of the two snapshots must be identical
    // (`ccr bench diff` skips nondet-tagged metrics).
    let rep = diff_strs(&snap_off, &snap_on, &DiffOptions::default()).expect("comparable");
    assert!(rep.ok(), "deterministic snapshot drifted with profiling on: {:?}", rep.regressions);
    let rep = diff_strs(&snap_on, &snap_off, &DiffOptions::default()).expect("comparable");
    assert!(rep.ok(), "deterministic snapshot drifted with profiling off: {:?}", rep.regressions);
}

/// Deterministic span counts of one profiled run:
/// (compute, encode, insert).
fn span_counts(sys: &RendezvousSystem<'_>, threads: usize) -> (u64, u64, u64) {
    let profiler = Profiler::new();
    let mut null = ccr_trace::NullSink;
    {
        let mut obs = SearchObserver::new(&mut null).with_profiler(profiler.clone());
        if threads == 0 {
            explore_observed(sys, &Budget::default(), |_| None, false, &mut obs);
        } else {
            explore_parallel_observed(
                sys,
                &Budget::default(),
                |_| None,
                false,
                &ParallelConfig::threads(threads),
                &mut obs,
            );
        }
    }
    let agg = profiler.aggregate();
    (
        agg.kind(SpanKind::Compute).count,
        agg.kind(SpanKind::Encode).count,
        agg.kind(SpanKind::Insert).count,
    )
}

#[test]
fn deterministic_span_counts_match_serial_at_every_thread_count() {
    for name in SHIPPED_SPECS {
        let spec = parse_validated(&spec_text(name)).unwrap_or_else(|e| panic!("{name}: {e}"));
        let sys = RendezvousSystem::new(&spec, 2);
        let serial = span_counts(&sys, 0);
        assert!(serial.0 > 0, "{name}: empty exploration");
        for threads in [1, 2, 4] {
            let parallel = span_counts(&sys, threads);
            assert_eq!(
                serial, parallel,
                "{name}: (compute, encode, insert) span counts diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn folded_stacks_round_trip_through_the_parser() {
    let spec = parse_validated(&spec_text("migratory.ccp")).expect("parse");
    let sys = RendezvousSystem::new(&spec, 2);
    let profiler = Profiler::new();
    let mut null = ccr_trace::NullSink;
    {
        let mut obs = SearchObserver::new(&mut null).with_profiler(profiler.clone());
        explore_parallel_observed(
            &sys,
            &Budget::default(),
            |_| None,
            false,
            &ParallelConfig::threads(2),
            &mut obs,
        );
    }
    let agg = profiler.aggregate();
    let folded = profiler.folded();
    assert!(!folded.is_empty());
    let reparsed =
        ProfileAgg::from_folded(&parse_folded(&folded).expect("parse")).expect("aggregate");
    assert_eq!(agg.workers.len(), reparsed.workers.len());
    for (a, b) in agg.workers.iter().zip(&reparsed.workers) {
        assert_eq!(a.worker, b.worker);
        for kind in SpanKind::ALL {
            assert_eq!(
                a.kind(kind).nanos,
                b.kind(kind).nanos,
                "worker {} {} nanos drifted through the folded encoding",
                a.worker,
                kind.name()
            );
        }
    }
}
