//! End-to-end verification of the invalidate protocol (the second Table 3
//! subject): reachability, coherence safety, Equation 1 and progress.

use ccr_mc::progress::check_progress_default;
use ccr_mc::search::{explore, explore_plain, Budget};
use ccr_mc::simrel::check_simulation;
use ccr_protocols::invalidate::{invalidate, invalidate_refined, InvalidateOptions};
use ccr_protocols::props;
use ccr_runtime::asynch::{AsyncConfig, AsyncSystem};
use ccr_runtime::rendezvous::RendezvousSystem;

#[test]
fn rendezvous_reachability_and_safety() {
    let spec = invalidate(&InvalidateOptions::default());
    for n in [1u32, 2, 3] {
        let sys = RendezvousSystem::new(&spec, n);
        let r = explore(&sys, &Budget::default(), props::invalidate_rv_invariant(&spec), true);
        assert!(r.outcome.is_complete(), "n={n}: {:?}", r.outcome);
        println!("rendezvous invalidate n={n}: {} states", r.states);
    }
}

#[test]
fn rendezvous_safety_with_data_tracking() {
    let spec = invalidate(&InvalidateOptions { data_domain: Some(2) });
    let sys = RendezvousSystem::new(&spec, 2);
    let r = explore(&sys, &Budget::default(), props::invalidate_rv_invariant(&spec), true);
    assert!(r.outcome.is_complete(), "{:?}", r.outcome);
    println!("rendezvous invalidate n=2 with data: {} states", r.states);
}

#[test]
fn async_reachability_and_safety() {
    let refined = invalidate_refined(&InvalidateOptions::default());
    for n in [1u32, 2] {
        let sys = AsyncSystem::new(&refined, n, AsyncConfig::default());
        let r = explore(
            &sys,
            &Budget::default(),
            props::invalidate_async_invariant(&refined.spec),
            true,
        );
        assert!(r.outcome.is_complete(), "n={n}: {:?}", r.outcome);
        println!("async invalidate n={n}: {} states", r.states);
    }
}

#[test]
fn equation_one_holds_for_invalidate() {
    let refined = invalidate_refined(&InvalidateOptions::default());
    let rv = RendezvousSystem::new(&refined.spec, 2);
    let asys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
    let r = check_simulation(&asys, &rv, &Budget::default());
    assert!(r.holds(), "{r:?}");
}

#[test]
fn progress_holds_for_invalidate_async() {
    let refined = invalidate_refined(&InvalidateOptions::default());
    let asys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
    let r = check_progress_default(&asys, &Budget::default());
    assert!(r.holds(), "{r:?}");
}

#[test]
fn invalidate_dwarfs_migratory_at_the_rendezvous_level() {
    // Table 3: invalidate's sharer set makes its state space much larger
    // than migratory's at equal N (546 vs 54 at N=2 in the paper).
    use ccr_protocols::migratory::{migratory, MigratoryOptions};
    let mig = migratory(&MigratoryOptions::default());
    let inv = invalidate(&InvalidateOptions::default());
    let m = explore_plain(&RendezvousSystem::new(&mig, 3), &Budget::default());
    let i = explore_plain(&RendezvousSystem::new(&inv, 3), &Budget::default());
    println!("n=3: migratory={} invalidate={}", m.states, i.states);
    assert!(i.states > 3 * m.states, "migratory={} invalidate={}", m.states, i.states);
}
