//! The refinement soundness theorem, property-tested over *randomly
//! generated* valid protocols: for every spec satisfying the §2.4
//! restrictions, the derived asynchronous protocol must
//!
//! 1. never trip a runtime assertion of the executor (unexpected acks,
//!    duplicate requests, buffer overflows, unsound fire-and-forget
//!    replies), and
//! 2. satisfy Equation 1 — every reachable asynchronous transition maps
//!    under `abs` to a stutter or one rendezvous step —
//!
//! regardless of which request/reply pairs the detector accepted. Random
//! protocols deadlock all the time (that is allowed — they are arbitrary),
//! but soundness must never fail. This hammers the reqrep safety checks,
//! the transient-state rules and the abstraction function together.

use ccr_core::builder::ProtocolBuilder;
use ccr_core::expr::Expr;
use ccr_core::ids::{MsgType, RemoteId};
use ccr_core::process::ProtocolSpec;
use ccr_core::refine::{refine, RefineOptions, ReqRepMode};
use ccr_mc::search::Budget;
use ccr_mc::simrel::check_simulation;
use ccr_runtime::asynch::{AsyncConfig, AsyncSystem};
use ccr_runtime::rendezvous::RendezvousSystem;
use proptest::prelude::*;

/// Shape of one remote state.
#[derive(Debug, Clone)]
enum RShape {
    /// Active: one send.
    Active { msg: usize, target: usize },
    /// Passive: 1–2 recvs plus an optional tau escape.
    Passive { recvs: Vec<(usize, usize)>, tau: Option<usize> },
}

/// Shape of one home branch.
#[derive(Debug, Clone)]
enum HShape {
    RecvAny { msg: usize, target: usize },
    SendTo { node: u32, msg: usize, target: usize },
}

fn arb_remote_state(nm: usize, ns: usize) -> impl Strategy<Value = RShape> {
    prop_oneof![
        (0..nm, 0..ns).prop_map(|(msg, target)| RShape::Active { msg, target }),
        (proptest::collection::vec((0..nm, 0..ns), 1..=2), proptest::option::of(0..ns))
            .prop_map(|(recvs, tau)| RShape::Passive { recvs, tau }),
    ]
}

fn arb_home_branch(nm: usize, ns: usize, nremotes: u32) -> impl Strategy<Value = HShape> {
    prop_oneof![
        (0..nm, 0..ns).prop_map(|(msg, target)| HShape::RecvAny { msg, target }),
        (0..nremotes, 0..nm, 0..ns).prop_map(|(node, msg, target)| HShape::SendTo {
            node,
            msg,
            target
        }),
    ]
}

fn build(nm: usize, home: Vec<Vec<HShape>>, remote: Vec<RShape>) -> ProtocolSpec {
    let mut b = ProtocolBuilder::new("random");
    let msgs: Vec<MsgType> = (0..nm).map(|i| b.msg(&format!("m{i}"))).collect();
    let hstates: Vec<_> = (0..home.len()).map(|i| b.home_state(&format!("H{i}"))).collect();
    for (si, branches) in home.iter().enumerate() {
        for br in branches {
            match br {
                HShape::RecvAny { msg, target } => {
                    b.home(hstates[si]).recv_any(msgs[*msg]).goto(hstates[*target]);
                }
                HShape::SendTo { node, msg, target } => {
                    b.home(hstates[si])
                        .send_to(Expr::node(RemoteId(*node)), msgs[*msg])
                        .goto(hstates[*target]);
                }
            }
        }
    }
    let rstates: Vec<_> = (0..remote.len()).map(|i| b.remote_state(&format!("R{i}"))).collect();
    for (si, shape) in remote.iter().enumerate() {
        match shape {
            RShape::Active { msg, target } => {
                b.remote(rstates[si]).send(msgs[*msg]).goto(rstates[*target]);
            }
            RShape::Passive { recvs, tau } => {
                for (msg, target) in recvs {
                    b.remote(rstates[si]).recv(msgs[*msg]).goto(rstates[*target]);
                }
                if let Some(t) = tau {
                    b.remote(rstates[si]).tau().goto(rstates[*t]);
                }
            }
        }
    }
    b.finish().expect("generated specs satisfy §2.4 by construction")
}

fn soundness(spec: &ProtocolSpec, mode: ReqRepMode, n: u32) {
    let refined = refine(spec, &RefineOptions { reqrep: mode }).unwrap();
    let rv = RendezvousSystem::new(spec, n);
    let asys = AsyncSystem::new(&refined, n, AsyncConfig::default());
    // Budgeted: some random protocols have big spaces; an incomplete pass
    // is fine, a *violation* never is.
    let sim = check_simulation(&asys, &rv, &Budget::states(30_000));
    assert!(
        sim.violation.is_none(),
        "soundness violated on a generated protocol:\n{}\nreport: {sim:?}",
        ccr_core::text::to_text(spec)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn equation_one_never_fails_on_random_specs(
        nm in 1..=3usize,
        home in proptest::collection::vec(
            proptest::collection::vec(arb_home_branch(3, 3, 2), 1..=3),
            1..=3
        ),
        remote in proptest::collection::vec(arb_remote_state(3, 3), 1..=3),
    ) {
        // Clamp indices that exceeded the actual sizes (vec lengths vary).
        let hs = home.len();
        let rs = remote.len();
        let home: Vec<Vec<HShape>> = home
            .into_iter()
            .map(|brs| {
                brs.into_iter()
                    .map(|b| match b {
                        HShape::RecvAny { msg, target } => {
                            HShape::RecvAny { msg: msg % nm, target: target % hs }
                        }
                        HShape::SendTo { node, msg, target } => {
                            HShape::SendTo { node, msg: msg % nm, target: target % hs }
                        }
                    })
                    .collect()
            })
            .collect();
        let remote: Vec<RShape> = remote
            .into_iter()
            .map(|s| match s {
                RShape::Active { msg, target } => {
                    RShape::Active { msg: msg % nm, target: target % rs }
                }
                RShape::Passive { recvs, tau } => RShape::Passive {
                    recvs: recvs.into_iter().map(|(m, t)| (m % nm, t % rs)).collect(),
                    tau: tau.map(|t| t % rs),
                },
            })
            .collect();
        let spec = build(nm, home, remote);
        soundness(&spec, ReqRepMode::Auto, 2);
        soundness(&spec, ReqRepMode::Off, 2);
    }
}
