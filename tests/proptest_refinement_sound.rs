//! The refinement soundness theorem, property-tested over *randomly
//! generated* valid protocols: for every spec satisfying the §2.4
//! restrictions, the derived asynchronous protocol must
//!
//! 1. never trip a runtime assertion of the executor (unexpected acks,
//!    duplicate requests, buffer overflows, unsound fire-and-forget
//!    replies), and
//! 2. satisfy Equation 1 — every reachable asynchronous transition maps
//!    under `abs` to a stutter or one rendezvous step —
//!
//! regardless of which request/reply pairs the detector accepted. Random
//! protocols deadlock all the time (that is allowed — they are arbitrary),
//! but soundness must never fail. This hammers the reqrep safety checks,
//! the transient-state rules and the abstraction function together.
//!
//! The shapes come from the shared [`ccr_core::zoo`] generator — the same
//! module `ccr fuzz` draws from — so the proptest and the fuzzer cannot
//! drift apart: any shape proptest can produce, the seeded zoo stream can
//! produce too (and vice versa). Index clamping lives in
//! [`ZooSpec::build`], so the strategies below stay oblivious to the
//! actual vector lengths.

use ccr_core::process::ProtocolSpec;
use ccr_core::refine::{refine, RefineOptions, ReqRepMode};
use ccr_core::text::{parse_validated, to_text};
use ccr_core::zoo::{HShape, RShape, ZooSpec};
use ccr_mc::search::Budget;
use ccr_mc::simrel::check_simulation;
use ccr_runtime::asynch::{AsyncConfig, AsyncSystem};
use ccr_runtime::rendezvous::RendezvousSystem;
use proptest::prelude::*;

fn arb_remote_state() -> impl Strategy<Value = RShape> {
    prop_oneof![
        (0..3usize, 0..3usize).prop_map(|(msg, target)| RShape::Active { msg, target }),
        (proptest::collection::vec((0..3usize, 0..3usize), 1..=2), proptest::option::of(0..3usize))
            .prop_map(|(recvs, tau)| RShape::Passive { recvs, tau }),
    ]
}

fn arb_home_branch() -> impl Strategy<Value = HShape> {
    prop_oneof![
        (0..3usize, 0..3usize).prop_map(|(msg, target)| HShape::RecvAny { msg, target }),
        (0..3usize, 0..3usize).prop_map(|(msg, target)| HShape::RecvAnyBind { msg, target }),
        (0..3usize, 0..3usize).prop_map(|(msg, target)| HShape::SendOwner { msg, target }),
        (0..3usize, 0..3usize).prop_map(|(msg, target)| HShape::RecvOwner { msg, target }),
        (0..2u32, 0..3usize, 0..3usize).prop_map(|(node, msg, target)| HShape::SendTo {
            node,
            msg,
            target
        }),
    ]
}

fn arb_zoo() -> impl Strategy<Value = ZooSpec> {
    (
        1..=3usize,
        proptest::collection::vec(proptest::collection::vec(arb_home_branch(), 1..=3), 1..=3),
        proptest::collection::vec(arb_remote_state(), 1..=3),
    )
        .prop_map(|(nm, home, remote)| ZooSpec {
            name: "random".to_string(),
            nm,
            home,
            remote,
        })
}

fn soundness(spec: &ProtocolSpec, mode: ReqRepMode, n: u32) {
    let refined = refine(spec, &RefineOptions { reqrep: mode }).unwrap();
    let rv = RendezvousSystem::new(spec, n);
    let asys = AsyncSystem::new(&refined, n, AsyncConfig::default());
    // Budgeted: some random protocols have big spaces; an incomplete pass
    // is fine, a *violation* never is.
    let sim = check_simulation(&asys, &rv, &Budget::states(30_000));
    assert!(
        sim.violation.is_none(),
        "soundness violated on a generated protocol:\n{}\nreport: {sim:?}",
        ccr_core::text::to_text(spec)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn equation_one_never_fails_on_random_specs(z in arb_zoo()) {
        let spec = z.build().expect("zoo shapes satisfy §2.4 by construction");
        soundness(&spec, ReqRepMode::Auto, 2);
        soundness(&spec, ReqRepMode::Off, 2);
    }

    // `parse(print(spec)) == spec` for arbitrary generated specs — the
    // round-trip guarantee `tests/shipped_specs.rs` checks for the six
    // shipped files, extended to the whole generator grammar.
    #[test]
    fn text_round_trips_on_random_specs(z in arb_zoo()) {
        let spec = z.build().expect("zoo shapes satisfy §2.4 by construction");
        let text = to_text(&spec);
        let back = parse_validated(&text)
            .unwrap_or_else(|e| panic!("printed spec failed to re-parse: {e}\n{text}"));
        assert_eq!(back, spec);
    }
}
