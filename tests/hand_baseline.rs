//! Verification of the hand-designed Avalanche baseline (§5): the protocol
//! the paper compares the derived one against. Because the hand design
//! commits evictions unilaterally (no `LR` ack), it cannot be justified by
//! the per-step Equation 1 against the rendezvous spec — it has to be
//! verified directly at the expensive asynchronous level, which is
//! precisely the methodological point of Table 3.

use ccr_mc::progress::check_progress_default;
use ccr_mc::search::{explore, explore_plain, Budget};
use ccr_protocols::hand::{hand_async_config, migratory_hand};
use ccr_protocols::migratory::{migratory_refined, MigratoryOptions};
use ccr_protocols::props;
use ccr_runtime::asynch::AsyncSystem;

fn opts() -> MigratoryOptions {
    MigratoryOptions::checking()
}

#[test]
fn hand_baseline_is_safe() {
    let hand = migratory_hand(&opts());
    for n in [1u32, 2, 3] {
        let sys = AsyncSystem::new(&hand, n, hand_async_config(n));
        let r =
            explore(&sys, &Budget::default(), props::migratory_async_invariant(&hand.spec), true);
        assert!(r.outcome.is_complete(), "n={n}: {:?}", r.outcome);
    }
}

#[test]
fn hand_baseline_keeps_progress() {
    let hand = migratory_hand(&opts());
    let sys = AsyncSystem::new(&hand, 2, hand_async_config(2));
    let r = check_progress_default(&sys, &Budget::default());
    assert!(r.holds(), "{r:?}");
}

#[test]
fn hand_baseline_state_space_is_comparable_to_derived() {
    // The paper's argument: verifying the hand design costs as much as
    // verifying any asynchronous protocol. Both async state spaces dwarf
    // the rendezvous one.
    let derived = migratory_refined(&opts());
    let hand = migratory_hand(&opts());
    let d = explore_plain(&AsyncSystem::new(&derived, 2, Default::default()), &Budget::default());
    let h = explore_plain(&AsyncSystem::new(&hand, 2, hand_async_config(2)), &Budget::default());
    assert!(d.outcome.is_complete() && h.outcome.is_complete());
    // Same order of magnitude.
    assert!(h.states * 10 > d.states && d.states * 10 > h.states, "d={} h={}", d.states, h.states);
}

#[test]
fn hand_baseline_saves_the_lr_ack() {
    let derived = migratory_refined(&opts());
    let hand = migratory_hand(&opts());
    let lr = derived.spec.msg_by_name("LR").unwrap();
    assert_eq!(derived.message_cost(lr), 2);
    assert_eq!(hand.message_cost(lr), 1);
    assert_eq!(derived.total_static_cost() - hand.total_static_cost(), 1);
}
