//! Cross-validation of the two implementations of Tables 1 and 2: the
//! verified global executor (`ccr-runtime::asynch`) and the deployment
//! per-role engines (`ccr-dsm::engine`). We drive a complete single-remote
//! lockstep bridge — every wire message produced by an engine is delivered
//! into the other — and require the engines to traverse exactly the
//! control states the global executor would.

use ccr_core::ids::RemoteId;
use ccr_core::refine::{refine, RefineOptions, ReqRepMode};
use ccr_dsm::engine::{HomeEngine, Phase, RemoteEngine};
use ccr_dsm::threaded::{run_threaded, ThreadedConfig};
use ccr_protocols::invalidate::{invalidate_refined, InvalidateOptions};
use ccr_protocols::migratory::{migratory_refined, MigratoryOptions};
use ccr_protocols::token::token;
use ccr_runtime::wire::Wire;

/// Run a one-remote system purely through the engines until `target`
/// completions, checking it never wedges.
fn engine_lockstep(refined: &ccr_core::refine::RefinedProtocol, target: u64) {
    let mut home = HomeEngine::new(refined, 1, 2, 0);
    let mut remote = RemoteEngine::new(refined, RemoteId(0));
    let mut to_home: Vec<Wire> = Vec::new();
    let mut to_remote: Vec<(RemoteId, Wire)> = Vec::new();
    let mut always = |_: &str| true;
    let mut rounds = 0u64;
    while home.completions.total() + remote.completions.total() < target {
        rounds += 1;
        assert!(
            rounds < 100_000,
            "engines wedged: home {:?} remote {:?}",
            home.phase(),
            remote.phase()
        );
        let mut progressed = false;
        // Deliver pending traffic.
        for w in to_home.drain(..) {
            home.handle(RemoteId(0), w, &mut to_remote).unwrap();
            progressed = true;
        }
        let drain = std::mem::take(&mut to_remote);
        for (_, w) in drain {
            remote.handle(w, &mut to_home).unwrap();
            progressed = true;
        }
        progressed |= home.poll(&mut to_remote).unwrap();
        progressed |= remote.poll(&mut always, &mut to_home).unwrap();
        assert!(progressed || !to_home.is_empty() || !to_remote.is_empty(), "no progress possible");
    }
}

#[test]
fn token_engines_run_forever() {
    let refined = refine(&token(), &RefineOptions::default()).unwrap();
    engine_lockstep(&refined, 200);
}

#[test]
fn token_engines_run_unoptimized_too() {
    let refined = refine(&token(), &RefineOptions { reqrep: ReqRepMode::Off }).unwrap();
    engine_lockstep(&refined, 200);
}

#[test]
fn migratory_engines_run() {
    let refined = migratory_refined(&MigratoryOptions::default());
    engine_lockstep(&refined, 200);
}

#[test]
fn invalidate_engines_run() {
    let refined = invalidate_refined(&InvalidateOptions { data_domain: Some(4) });
    engine_lockstep(&refined, 200);
}

#[test]
fn engine_states_match_spec_states() {
    // After any number of completed cycles the remote engine must sit at a
    // state of the original spec (never a phantom state).
    let refined = migratory_refined(&MigratoryOptions::default());
    let mut remote = RemoteEngine::new(&refined, RemoteId(0));
    let mut out = Vec::new();
    let mut always = |_: &str| true;
    for _ in 0..10 {
        let _ = remote.poll(&mut always, &mut out).unwrap();
        match remote.phase() {
            Phase::At(s) | Phase::Awaiting { state: s, .. } => {
                assert!(refined.spec.remote.state(s).is_some());
            }
        }
        // Feed nacks back so requests retry rather than block forever.
        if matches!(remote.phase(), Phase::Awaiting { .. }) {
            remote.handle(Wire::Nack, &mut out).unwrap();
        }
        out.clear();
    }
}

#[test]
fn threaded_matches_machine_msgs_per_op_roughly() {
    // The threaded engines and the verified global machine should agree on
    // the protocol's message economy (messages per operation) within a
    // generous tolerance — they run the same tables under different
    // schedules.
    use ccr_dsm::machine::{Machine, MachineConfig};
    use ccr_dsm::workload::Migrating;
    use ccr_runtime::sched::RandomSched;

    let refined = migratory_refined(&MigratoryOptions::default());

    let config = MachineConfig::standard(&refined, 4, 100_000);
    let machine = Machine::new(&refined, config);
    let mut wl = Migrating::new(5, 0.5, 0.5);
    let mut sched = RandomSched::new(6);
    let report = machine.run("derived", &mut wl, &mut sched).unwrap();
    let machine_mpo = report.msgs_per_op.unwrap();

    let tconfig = ThreadedConfig { n: 4, target_ops: 2_000, ..Default::default() };
    let treport = run_threaded(&refined, &tconfig);
    assert!(treport.error.is_none());
    assert!(treport.reached_target);
    let threaded_mpo = treport.home_messages as f64 / treport.ops as f64;

    assert!(
        (machine_mpo / threaded_mpo) < 3.0 && (threaded_mpo / machine_mpo) < 3.0,
        "machine {machine_mpo:.2} vs threaded {threaded_mpo:.2}"
    );
}
