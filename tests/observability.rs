//! End-to-end checks for the tracing/observability pipeline: deterministic
//! JSONL traces, replayable counterexamples from a broken spec, and the
//! machine-readable CLI surfaces (`--trace`, `--json`).

use ccr_core::text::parse_validated;
use ccr_dsm::machine::{Machine, MachineConfig};
use ccr_dsm::workload::Migrating;
use ccr_mc::search::Budget;
use ccr_mc::trace::{explore_traced, replay_trail};
use ccr_protocols::migratory::{migratory_refined, MigratoryOptions};
use ccr_runtime::rendezvous::RendezvousSystem;
use ccr_runtime::sched::RandomSched;
use ccr_runtime::system::TransitionSystem;
use ccr_trace::json_check::is_valid_json;
use ccr_trace::JsonlSink;
use std::path::Path;

fn spec_text(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("specs").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// One full derived-machine run, traced into an in-memory JSONL buffer.
fn traced_run(seed: u64) -> Vec<u8> {
    let refined = migratory_refined(&MigratoryOptions::default());
    let config = MachineConfig::standard(&refined, 3, 400);
    let machine = Machine::new(&refined, config);
    let mut wl = Migrating::new(seed, 0.8, 0.5);
    let mut sched = RandomSched::new(seed);
    let mut sink = JsonlSink::new(Vec::new());
    machine.run_observed("derived", &mut wl, &mut sched, &mut sink).expect("run");
    sink.into_inner().expect("no io errors on a Vec")
}

#[test]
fn same_seed_yields_byte_identical_jsonl_traces() {
    let a = traced_run(42);
    let b = traced_run(42);
    assert!(!a.is_empty());
    assert_eq!(a, b, "traced runs with the same seed must be byte-identical");
    let text = String::from_utf8(a).expect("utf8");
    for line in text.lines() {
        assert!(is_valid_json(line), "{line}");
    }
}

#[test]
fn different_seeds_yield_different_traces() {
    // Guards against the determinism test passing vacuously (e.g. an
    // always-empty trace would be trivially "identical").
    let a = traced_run(42);
    let b = traced_run(43);
    assert_ne!(a, b);
}

#[test]
fn broken_spec_counterexample_replays_to_a_stuck_state() {
    let spec = parse_validated(&spec_text("migratory_broken.ccp")).expect("parse");
    let rv = RendezvousSystem::new(&spec, 2);
    let report = explore_traced(&rv, &Budget::states(100_000), |_| None, true);
    let trail = report.trail.as_ref().expect("broken spec must yield a counterexample");
    assert!(!trail.is_empty());
    let end = replay_trail(&rv, trail).expect("counterexample must replay");
    let mut succ = Vec::new();
    rv.successors(&end, &mut succ).expect("successors");
    assert!(succ.is_empty(), "replayed counterexample must end in a deadlocked state");
}

#[test]
fn cli_trace_flag_writes_a_replayable_counterexample() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let dir = std::env::temp_dir().join(format!("ccr-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let cex = dir.join("cex.jsonl");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_ccr"))
        .args(["verify", "specs/migratory_broken.ccp", "-n", "2"])
        .arg("--trace")
        .arg(&cex)
        .current_dir(root)
        .output()
        .expect("spawn ccr");
    assert!(!out.status.success(), "broken spec must fail verification");
    let text = std::fs::read_to_string(&cex).expect("trace file written");
    std::fs::remove_dir_all(&dir).ok();
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "counterexample trace must be non-empty");
    for line in &lines {
        assert!(is_valid_json(line), "{line}");
    }
    assert!(lines.iter().any(|l| l.contains("\"Step\"")), "{text}");
    assert!(
        lines.last().unwrap().contains("\"Deadlock\""),
        "trace must end with the deadlock outcome: {text}"
    );
}

#[test]
fn cli_json_report_is_valid_and_holds() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_ccr"))
        .args(["verify", "specs/migratory.ccp", "-n", "2", "--json"])
        .current_dir(root)
        .output()
        .expect("spawn ccr");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let line = stdout.trim();
    assert!(is_valid_json(line), "{line}");
    assert!(line.contains("\"holds\":true"), "{line}");
    assert!(line.contains("\"equation1\""), "{line}");
}

#[test]
fn cli_json_table_is_valid() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_ccr"))
        .args(["table", "specs/migratory.ccp", "-n", "2", "--json"])
        .current_dir(root)
        .output()
        .expect("spawn ccr");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let line = stdout.trim();
    assert!(is_valid_json(line), "{line}");
    assert!(line.contains("\"rows\""), "{line}");
}
