//! Differential crash-recovery harness for the persistence layer
//! (`docs/persistence.md`), driving the real `ccr` binary:
//!
//! * a RAM-capped **spill** run (`--spill-dir` + tiny `--spill-bytes`)
//!   and a **kill -9 → `--resume`** run (`--crash-after-states`, which
//!   aborts the process without destructors or flushes) both finish
//!   with byte-identical states/transitions/outcome versus an
//!   uninterrupted in-memory run — on every shipped spec, serial and at
//!   4 threads;
//! * corruption inside the committed region (bit rot, truncation below
//!   the manifest, a garbled manifest) fails safe with a diagnostic and
//!   a nonzero exit instead of wrong answers.

use ccr_metrics::jsonval::Json;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Every spec shipped under `specs/` — including the deliberately
/// broken one, so violating outcomes survive a crash/resume too.
const SPECS: [&str; 6] = [
    "invalidate.ccp",
    "migratory.ccp",
    "migratory_broken.ccp",
    "migratory_gated.ccp",
    "token.ccp",
    "update.ccp",
];

fn root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ccr-persistence-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn ccr(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ccr"))
        .args(args)
        .current_dir(root())
        .output()
        .expect("spawn ccr")
}

/// The determinism contract's pinned bytes: `(states, transitions,
/// outcome)` of each reachability sweep in a `verify --json` document.
/// The outcome is compared as its serialized JSON — byte identity, not
/// just variant identity.
fn sweep_counts(stdout: &[u8]) -> Vec<(String, u64, u64, String)> {
    let doc = Json::parse(std::str::from_utf8(stdout).unwrap()).expect("verify JSON");
    let mut out = Vec::new();
    for key in ["rendezvous", "asynchronous"] {
        let Some(sweep) = doc.get(key).filter(|s| !matches!(s, Json::Null)) else {
            out.push((key.to_string(), 0, 0, "absent".to_string()));
            continue;
        };
        out.push((
            key.to_string(),
            sweep.get("states").and_then(Json::as_u64).unwrap(),
            sweep.get("transitions").and_then(Json::as_u64).unwrap(),
            format!("{:?}", sweep.get("outcome").unwrap()),
        ));
    }
    out
}

/// One spec × one engine: uninterrupted vs spill vs crash+resume.
fn check_spec(spec: &str, threads: Option<&str>, dir: &Path) {
    let spec_path = format!("specs/{spec}");
    let tag = threads.map(|t| format!("{t}t")).unwrap_or_else(|| "serial".into());
    let run = |extra: Vec<String>| -> Output {
        let mut args: Vec<String> =
            ["verify", &spec_path, "-n", "2", "--json"].map(String::from).to_vec();
        if let Some(t) = threads {
            args.push("--threads".into());
            args.push(t.into());
        }
        args.extend(extra);
        ccr(&args.iter().map(String::as_str).collect::<Vec<_>>())
    };

    // The reference: one uninterrupted, in-memory run. Broken specs exit
    // nonzero by design — the counts are still the contract.
    let base = sweep_counts(&run(vec![]).stdout);

    // RAM-capped spill run: a byte budget far below the visited set, so
    // the store actually evicts and re-reads payloads from the log. The
    // 50 ms cadence keeps checkpoints frequent without syncing on every
    // expansion (interval 0 turns the big sweeps quadratic in file I/O).
    let spill_dir = dir.join(format!("{spec}-{tag}-spill"));
    let spill = run(vec![
        "--spill-dir".into(),
        spill_dir.display().to_string(),
        "--spill-bytes".into(),
        "4096".into(),
        "--checkpoint-interval".into(),
        "0.05".into(),
    ]);
    assert_eq!(
        sweep_counts(&spill.stdout),
        base,
        "{spec} ({tag}): spill run diverged\nstderr: {}",
        String::from_utf8_lossy(&spill.stderr)
    );

    // Kill -9 mid-run (the crash switch aborts the process), then
    // resume from the last checkpoint.
    let crash_dir = dir.join(format!("{spec}-{tag}-crash"));
    let crash = run(vec![
        "--spill-dir".into(),
        crash_dir.display().to_string(),
        "--checkpoint-interval".into(),
        "0.05".into(),
        "--crash-after-states".into(),
        "40".into(),
    ]);
    assert!(
        !crash.status.success(),
        "{spec} ({tag}): crash run must die, stdout: {}",
        String::from_utf8_lossy(&crash.stdout)
    );
    let resumed = ccr(&["verify", "--resume", &crash_dir.display().to_string(), "--json"]);
    assert_eq!(
        sweep_counts(&resumed.stdout),
        base,
        "{spec} ({tag}): resumed run diverged\nstderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
}

#[test]
fn spill_and_crash_resume_match_uninterrupted_serial() {
    let dir = tmp("serial");
    for spec in SPECS {
        check_spec(spec, None, &dir);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn spill_and_crash_resume_match_uninterrupted_parallel() {
    let dir = tmp("parallel");
    for spec in SPECS {
        check_spec(spec, Some("4"), &dir);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A crashed run can also be resumed on a different thread count: the
/// checkpoint fixes the shard count, not the worker count.
#[test]
fn resume_across_thread_counts() {
    let dir = tmp("threads");
    let d = dir.join("crash");
    let base = sweep_counts(
        &ccr(&["verify", "specs/token.ccp", "-n", "3", "--threads", "4", "--json"]).stdout,
    );
    let crash = ccr(&[
        "verify",
        "specs/token.ccp",
        "-n",
        "3",
        "--threads",
        "4",
        "--json",
        "--spill-dir",
        &d.display().to_string(),
        "--checkpoint-interval",
        "0",
        "--crash-after-states",
        "60",
    ]);
    assert!(!crash.status.success());
    let resumed =
        ccr(&["verify", "--resume", &d.display().to_string(), "--threads", "1", "--json"]);
    assert_eq!(
        sweep_counts(&resumed.stdout),
        base,
        "stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Resuming a run whose phases already finished restores the reports
/// from the terminal manifests without re-searching.
#[test]
fn resume_of_a_finished_run_restores_reports() {
    let dir = tmp("finished");
    let d = dir.join("spill");
    let done = ccr(&[
        "verify",
        "specs/token.ccp",
        "-n",
        "2",
        "--json",
        "--spill-dir",
        &d.display().to_string(),
    ]);
    let base = sweep_counts(&done.stdout);
    let resumed = ccr(&["verify", "--resume", &d.display().to_string()]);
    assert!(resumed.status.success(), "{}", String::from_utf8_lossy(&resumed.stderr));
    let stdout = String::from_utf8_lossy(&resumed.stdout);
    assert!(stdout.contains("restored from finished checkpoint"), "{stdout}");
    let rejson = ccr(&["verify", "--resume", &d.display().to_string(), "--json"]);
    assert_eq!(sweep_counts(&rejson.stdout), base);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Corruption fails safe: a garbled manifest, bit rot inside the
/// committed log region, and a log truncated below its manifest each
/// exit nonzero with a diagnostic naming the damage.
#[test]
fn corruption_fails_safe_with_a_diagnostic() {
    use std::io::{Read, Seek, SeekFrom, Write};
    let dir = tmp("corrupt");

    // A finished run with a garbled manifest.
    let d1 = dir.join("manifest");
    ccr(&["verify", "specs/token.ccp", "-n", "2", "--spill-dir", &d1.display().to_string()]);
    std::fs::write(d1.join("async/manifest.json"), "{broken").unwrap();
    let out = ccr(&["verify", "--resume", &d1.display().to_string()]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("corrupt manifest"), "{err}");

    // A crashed run (mid-async checkpoint) with one byte of the
    // committed log region flipped.
    let d2 = dir.join("rot");
    let crash = ccr(&[
        "verify",
        "specs/token.ccp",
        "-n",
        "2",
        "--spill-dir",
        &d2.display().to_string(),
        "--checkpoint-interval",
        "0",
        "--crash-after-states",
        "40",
    ]);
    assert!(!crash.status.success());
    let log = d2.join("async/log");
    let committed = std::fs::metadata(&log).unwrap().len();
    assert!(committed > 20, "crash run must have committed log bytes");
    let mut f = std::fs::OpenOptions::new().read(true).write(true).open(&log).unwrap();
    f.seek(SeekFrom::Start(committed - 3)).unwrap();
    let mut b = [0u8; 1];
    f.read_exact(&mut b).unwrap();
    f.seek(SeekFrom::Start(committed - 3)).unwrap();
    f.write_all(&[b[0] ^ 0xFF]).unwrap();
    drop(f);
    let out = ccr(&["verify", "--resume", &d2.display().to_string()]);
    assert!(!out.status.success(), "bit rot must fail the resume");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("checksum mismatch"), "{err}");

    // The same crashed layout with the log truncated below the bytes
    // its manifest vouches for.
    let d3 = dir.join("short");
    let crash = ccr(&[
        "verify",
        "specs/token.ccp",
        "-n",
        "2",
        "--spill-dir",
        &d3.display().to_string(),
        "--checkpoint-interval",
        "0",
        "--crash-after-states",
        "40",
    ]);
    assert!(!crash.status.success());
    let log = d3.join("async/log");
    let committed = std::fs::metadata(&log).unwrap().len();
    std::fs::OpenOptions::new().write(true).open(&log).unwrap().set_len(committed - 5).unwrap();
    let out = ccr(&["verify", "--resume", &d3.display().to_string()]);
    assert!(!out.status.success(), "a log truncated below its manifest must fail the resume");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("truncated below"), "{err}");

    std::fs::remove_dir_all(&dir).unwrap();
}

/// `--resume` of a directory without a run is a clean error, and spill
/// flags outside `verify` are rejected.
#[test]
fn resume_and_flag_misuse_are_clean_errors() {
    let out = ccr(&["verify", "--resume", "/nonexistent/run-dir"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot resume"), "{err}");

    let out = ccr(&["table", "specs/token.ccp", "--spill-dir", "/tmp/x"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("apply to `verify` only"), "{err}");

    let out = ccr(&["verify", "specs/token.ccp", "--crash-after-states", "10"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("needs --spill-dir"), "{err}");
}
