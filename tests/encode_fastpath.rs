//! Property tests for the zero-copy insert path: the fixed-width
//! `encode_into` fast path must be **byte-identical** to the reference
//! `encode` on randomly reached states of every shipped spec (both
//! protocol levels), and a duplicate resolved through the arena-slot
//! protocol (`begin_insert` → encode in place → `commit_insert`) must
//! roll the bump pointer back so cleanly that the store is
//! indistinguishable from one that never saw the duplicate: exact
//! `approx_bytes`, unchanged entry count, and every committed entry's
//! bytes untouched.
//!
//! Random walks, not the full reachable set: proptest drives the step
//! choices, so each case exercises a different slice of the space —
//! including deep states whose queue/link occupancy stresses the
//! fixed-width layout harder than the initial-state neighborhood.

use ccr_core::refine::{refine, RefineOptions};
use ccr_core::text::parse_validated;
use ccr_mc::store::StateStore;
use ccr_runtime::asynch::{AsyncConfig, AsyncSystem};
use ccr_runtime::rendezvous::RendezvousSystem;
use ccr_runtime::TransitionSystem;
use proptest::prelude::*;
use std::path::Path;

const HEALTHY: [&str; 5] =
    ["invalidate.ccp", "migratory.ccp", "migratory_gated.ccp", "token.ccp", "update.ccp"];
const BROKEN: &str = "migratory_broken.ccp";

fn load(name: &str) -> ccr_core::process::ProtocolSpec {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("specs").join(name);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    parse_validated(&text).unwrap_or_else(|e| panic!("{name}: {e}"))
}

/// Walks `sys` for up to `steps.len()` transitions (each entry picks the
/// successor by index) and checks, at every state reached:
///
/// 1. `encode_into` writes exactly the bytes `encode` produces, within
///    the advertised `max_encoded_len` bound;
/// 2. inserting the state twice through the arena-slot protocol commits
///    once and rolls back once, leaving the store byte-identical.
fn walk_and_check<T: TransitionSystem>(sys: &T, steps: &[usize], context: &str) {
    let bound = sys
        .max_encoded_len()
        .unwrap_or_else(|| panic!("{context}: shipped systems must advertise a bound"));
    let mut store = StateStore::new();
    let mut reference = Vec::new();
    let mut succs = Vec::new();
    let mut state = sys.initial();
    for (i, &pick) in std::iter::once(&0usize).chain(steps).enumerate() {
        if i > 0 {
            sys.successors(&state, &mut succs).unwrap_or_else(|e| panic!("{context}: {e}"));
            if succs.is_empty() {
                break; // deadlock (the broken spec earns its name)
            }
            state = succs[pick % succs.len()].1.clone();
        }

        // Fast path vs reference path, byte for byte.
        sys.encode(&state, &mut reference);
        assert!(reference.len() <= bound, "{context} step {i}: encode exceeds max_encoded_len");
        let mut buf = vec![0xAAu8; bound];
        let written = sys.encode_into(&state, &mut buf);
        assert_eq!(written, reference.len(), "{context} step {i}: fast-path length differs");
        assert_eq!(&buf[..written], &reference[..], "{context} step {i}: fast-path bytes differ");

        // First slot insert: may be new (commit) or a revisit (rollback).
        let slot = store.begin_insert(bound);
        let n = sys.encode_into(&state, store.slot_buf(&slot));
        let (idx, _) = store.commit_insert(slot, n);

        // Duplicate slot inserts of the same bytes must roll back without
        // a trace: same index, no new entry, committed bytes untouched.
        // The first duplicate may still grow the hash table (the
        // load-factor check runs before the probe), so the exact-bytes
        // assertion measures across the *second* duplicate, where the
        // only possible footprint change would be a genuine arena leak.
        let entries = store.len();
        let mut bytes_committed = 0;
        for round in 0..2 {
            let slot = store.begin_insert(bound);
            let n = sys.encode_into(&state, store.slot_buf(&slot));
            let (dup_idx, dup_new) = store.commit_insert(slot, n);
            assert!(!dup_new, "{context} step {i}: duplicate commit must not insert");
            assert_eq!(dup_idx, idx, "{context} step {i}: duplicate must find the entry");
            assert_eq!(store.len(), entries, "{context} step {i}: rollback added entries");
            if round > 0 {
                assert_eq!(
                    store.approx_bytes(),
                    bytes_committed,
                    "{context} step {i}: rollback must restore the byte footprint exactly"
                );
            }
            bytes_committed = store.approx_bytes();
        }
        assert_eq!(
            store.key_bytes(idx),
            Some(&reference[..]),
            "{context} step {i}: committed bytes must survive the rollback"
        );
    }
    // The arena holds exactly the committed entries, nothing leaked from
    // the rolled-back duplicates.
    for idx in 0..store.len() as u32 {
        assert!(store.key_bytes(idx).is_some(), "{context}: entry {idx} lost its bytes");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fastpath_encode_matches_reference_on_random_walks(
        steps in prop::collection::vec(any::<usize>(), 1..48),
    ) {
        for name in HEALTHY.iter().copied().chain(std::iter::once(BROKEN)) {
            let spec = load(name);
            for n in [2u32, 3] {
                let sys = RendezvousSystem::new(&spec, n);
                walk_and_check(&sys, &steps, &format!("{name} rv n={n}"));
            }
            if name != BROKEN {
                let refined = refine(&spec, &RefineOptions::default())
                    .unwrap_or_else(|e| panic!("{name}: refine: {e}"));
                let sys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
                walk_and_check(&sys, &steps, &format!("{name} async n=2"));
            }
        }
    }
}
