//! End-to-end verification of the migratory protocol: reachability,
//! coherence invariants, Equation 1 and forward progress at both levels.

use ccr_mc::progress::check_progress_default;
use ccr_mc::search::{explore, explore_plain, Budget};
use ccr_mc::simrel::check_simulation;
use ccr_protocols::migratory::{migratory, migratory_refined, MigratoryOptions};
use ccr_protocols::props;
use ccr_runtime::asynch::{AsyncConfig, AsyncSystem};
use ccr_runtime::rendezvous::RendezvousSystem;

#[test]
fn rendezvous_reachability_and_safety() {
    let spec = migratory(&MigratoryOptions::default());
    for n in [1u32, 2, 3] {
        let sys = RendezvousSystem::new(&spec, n);
        let r = explore(&sys, &Budget::default(), props::migratory_rv_invariant(&spec), true);
        assert!(r.outcome.is_complete(), "n={n}: {:?}", r.outcome);
        println!("rendezvous migratory n={n}: {} states", r.states);
    }
}

#[test]
fn async_reachability_and_safety() {
    let refined = migratory_refined(&MigratoryOptions::default());
    for n in [1u32, 2] {
        let sys = AsyncSystem::new(&refined, n, AsyncConfig::default());
        let r = explore(
            &sys,
            &Budget::default(),
            props::migratory_async_invariant(&refined.spec),
            true,
        );
        assert!(r.outcome.is_complete(), "n={n}: {:?}", r.outcome);
        println!("async migratory n={n}: {} states", r.states);
    }
}

#[test]
fn equation_one_holds_for_migratory() {
    let refined = migratory_refined(&MigratoryOptions::default());
    let rv = RendezvousSystem::new(&refined.spec, 2);
    let asys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
    let r = check_simulation(&asys, &rv, &Budget::default());
    assert!(r.holds(), "{r:?}");
    println!(
        "simrel: {} async states, {} stutters, {} mapped",
        r.async_states, r.stutters, r.mapped_steps
    );
}

#[test]
fn progress_holds_for_migratory_async() {
    let refined = migratory_refined(&MigratoryOptions::default());
    let asys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
    let r = check_progress_default(&asys, &Budget::default());
    assert!(r.holds(), "{r:?}");
}

#[test]
fn rendezvous_much_smaller_than_async() {
    let spec = migratory(&MigratoryOptions::default());
    let refined = migratory_refined(&MigratoryOptions::default());
    let rv = RendezvousSystem::new(&spec, 2);
    let asys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
    let r1 = explore_plain(&rv, &Budget::default());
    let r2 = explore_plain(&asys, &Budget::default());
    println!("rv={} async={}", r1.states, r2.states);
    assert!(r2.states > 3 * r1.states, "rv={} async={}", r1.states, r2.states);

    // The gap widens rapidly with N (the paper's central observation).
    let rv3 = RendezvousSystem::new(&spec, 3);
    let asys3 = AsyncSystem::new(&refined, 3, AsyncConfig::default());
    let r1 = explore_plain(&rv3, &Budget::default());
    let r2 = explore_plain(&asys3, &Budget::default());
    println!("n=3: rv={} async={}", r1.states, r2.states);
    assert!(r2.states > 10 * r1.states, "rv={} async={}", r1.states, r2.states);
}
