//! The derivation-fuzzing stack end to end: the seeded zoo stream is
//! deterministic and well-formed, the differential pipeline passes on the
//! pinned CI seed, the shrinker minimizes injected failures and leaves
//! passing specs alone, and the `ccr fuzz` CLI verb agrees with the
//! library on all of it.

use ccr_core::text::{parse_validated, to_text};
use ccr_core::zoo::ZooSpec;
use ccr_mc::{run_shape, shrink_failing, FuzzConfig};
use std::path::Path;

/// The seed pinned in CI (`fuzz-smoke`); changing the generator or the
/// pipeline in a way that breaks this stream should be a conscious act.
const CI_SEED: u64 = 1998;

fn quick_cfg() -> FuzzConfig {
    FuzzConfig { budget_states: 8_000, threads: vec![2], fault_budget: 1, ..FuzzConfig::default() }
}

#[test]
fn zoo_stream_is_deterministic_and_wellformed() {
    for i in 0..64 {
        let a = ZooSpec::generate(CI_SEED, i);
        let b = ZooSpec::generate(CI_SEED, i);
        assert_eq!(a, b, "generate({CI_SEED}, {i}) is not a pure function");
        let spec = a.build().expect("generated shapes satisfy §2.4");
        assert_eq!(spec.name, format!("zoo_{CI_SEED}_{i}"));
    }
    // Different seeds genuinely decorrelate the stream.
    assert_ne!(ZooSpec::generate(1, 0), ZooSpec::generate(2, 0));
}

#[test]
fn generated_specs_round_trip_through_text() {
    for i in 0..64 {
        let spec = ZooSpec::generate(CI_SEED, i).build().unwrap();
        let text = to_text(&spec);
        let back = parse_validated(&text)
            .unwrap_or_else(|e| panic!("zoo_{CI_SEED}_{i} failed to re-parse: {e}\n{text}"));
        assert_eq!(back, spec, "round trip changed zoo_{CI_SEED}_{i}");
    }
}

#[test]
fn pinned_seed_prefix_passes_the_pipeline() {
    let cfg = quick_cfg();
    for i in 0..12 {
        let shape = ZooSpec::generate(CI_SEED, i);
        let v = run_shape(&shape, &cfg);
        assert!(v.passed(), "zoo_{CI_SEED}_{i} failed: {:?}", v.failure);
    }
}

#[test]
fn shrinking_a_passing_spec_is_a_noop() {
    let cfg = quick_cfg();
    let shape = ZooSpec::generate(CI_SEED, 0);
    let sr = shrink_failing(&shape, &cfg, 64);
    assert!(sr.verdict.passed());
    assert_eq!(sr.steps, 0, "shrinker mutated a passing spec");
    assert_eq!(sr.shape, shape, "shrinker returned a different shape for a passing spec");
}

/// A `migratory_broken`-shaped injection (an acked remote send marked
/// fire-and-forget post-refinement) must fail the pipeline, and the
/// shrinker must walk it down to a *local minimum*: strictly smaller than
/// the original, still failing, with every valid one-step shrink passing.
#[test]
fn broken_injection_shrinks_to_a_minimal_still_failing_spec() {
    let cfg = FuzzConfig { inject: true, ..quick_cfg() };
    // Seed 42 index 16 hosts the injection (its remote has an acked send).
    let shape = ZooSpec::generate(42, 16);
    let before = run_shape(&shape, &cfg);
    assert!(!before.passed(), "injection went undetected on the chosen seed");

    let sr = shrink_failing(&shape, &cfg, 256);
    assert!(!sr.verdict.passed(), "shrinker lost the failure");
    assert!(sr.steps > 0, "a multi-state shape should shrink at least once");
    assert!(sr.shape.size() < shape.size());
    for cand in sr.shape.shrink_candidates() {
        if cand.build().is_err() {
            continue;
        }
        let v = run_shape(&cand, &cfg);
        assert!(
            v.passed(),
            "not a local minimum: candidate {cand:?} still fails with {:?}",
            v.failure
        );
    }

    // Determinism: the same shrink re-runs to the same result.
    let sr2 = shrink_failing(&shape, &cfg, 256);
    assert_eq!(sr.shape, sr2.shape);
    assert_eq!(sr.steps, sr2.steps);
}

/// Without injection the pinned stream is honest-to-goodness sound, so the
/// injection flag is what flips the verdict — guards against the negative
/// CI case silently testing nothing.
#[test]
fn injection_flag_flips_the_verdict() {
    let clean = quick_cfg();
    let broken = FuzzConfig { inject: true, ..quick_cfg() };
    let shape = ZooSpec::generate(42, 16);
    assert!(run_shape(&shape, &clean).passed());
    assert!(!run_shape(&shape, &broken).passed());
}

#[test]
fn cli_fuzz_is_deterministic_and_clean_on_pinned_seed() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let exe = root.join("target/release/ccr");
    if !exe.exists() {
        eprintln!("skipping: {} not built", exe.display());
        return;
    }
    let run = || {
        std::process::Command::new(&exe)
            .args(["fuzz", "--seed", "1998", "--count", "25", "--json"])
            .current_dir(root)
            .output()
            .expect("spawn ccr fuzz")
    };
    let a = run();
    assert!(a.status.success(), "{}", String::from_utf8_lossy(&a.stderr));
    let stdout = String::from_utf8_lossy(&a.stdout);
    assert!(stdout.contains("\"failed\":0"), "{stdout}");
    let b = run();
    assert_eq!(a.stdout, b.stdout, "ccr fuzz is not deterministic");
}

#[test]
fn cli_fuzz_inject_broken_exits_nonzero_and_emits_shrunk_spec() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let exe = root.join("target/release/ccr");
    if !exe.exists() {
        eprintln!("skipping: {} not built", exe.display());
        return;
    }
    let dir = std::env::temp_dir().join(format!("ccr_fuzz_neg_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = std::process::Command::new(&exe)
        .args(["fuzz", "--seed", "42", "--count", "20", "--inject-broken", "--shrink"])
        .arg("--corpus")
        .arg(&dir)
        .current_dir(root)
        .output()
        .expect("spawn ccr fuzz");
    assert!(!out.status.success(), "broken run must exit nonzero");
    let shrunk: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".fail.ccp"))
        .collect();
    assert!(!shrunk.is_empty(), "no shrunk .fail.ccp emitted");
    // Every emitted counterexample is itself a valid, re-parseable spec.
    for e in &shrunk {
        let text = std::fs::read_to_string(e.path()).unwrap();
        parse_validated(&text).unwrap_or_else(|err| panic!("{:?}: {err}", e.path()));
    }
    let _ = std::fs::remove_dir_all(&dir);
}
