//! End-to-end checks for the metrics pipeline: snapshot determinism
//! across identical runs and thread counts, the Prometheus exposition
//! surface, the `ccr verify --metrics` CLI contract, and the
//! `ccr bench diff` regression gate's exit codes.

use ccr_mc::parallel::{explore_parallel_observed, ParallelConfig};
use ccr_mc::search::{explore_observed, Budget, SearchObserver};
use ccr_metrics::jsonval::Json;
use ccr_metrics::{promcheck, Registry};
use ccr_protocols::migratory::{migratory_refined, MigratoryOptions};
use ccr_runtime::asynch::{AsyncConfig, AsyncSystem};
use ccr_trace::NullSink;
use std::path::{Path, PathBuf};
use std::process::Command;

/// One full serial exploration of the async migratory space at `n`,
/// metered into a fresh registry.
fn serial_snapshot(n: u32) -> ccr_metrics::Snapshot {
    let refined = migratory_refined(&MigratoryOptions::default());
    let sys = AsyncSystem::new(&refined, n, AsyncConfig::default());
    let reg = Registry::new();
    let mut null = NullSink;
    let mut obs = SearchObserver::with_metrics(&mut null, reg.clone());
    let r = explore_observed(&sys, &Budget::default(), |_| None, false, &mut obs);
    assert!(r.outcome.is_complete());
    reg.snapshot()
}

fn parallel_snapshot(n: u32, threads: usize) -> ccr_metrics::Snapshot {
    let refined = migratory_refined(&MigratoryOptions::default());
    let sys = AsyncSystem::new(&refined, n, AsyncConfig::default());
    let reg = Registry::new();
    let mut null = NullSink;
    let mut obs = SearchObserver::with_metrics(&mut null, reg.clone());
    let r = explore_parallel_observed(
        &sys,
        &Budget::default(),
        |_| None,
        false,
        &ParallelConfig::threads(threads),
        &mut obs,
    );
    assert!(r.outcome.is_complete());
    reg.snapshot()
}

#[test]
fn identical_serial_runs_yield_identical_snapshots() {
    // Library-level runs record no phases, so the *full* snapshot —
    // nondeterministic-tagged metrics included — must be byte-identical.
    let a = serial_snapshot(2).to_json();
    let b = serial_snapshot(2).to_json();
    assert!(!a.is_empty());
    assert_eq!(a, b);
}

#[test]
fn parallel_deterministic_view_is_thread_count_independent() {
    let views: Vec<ccr_metrics::Snapshot> =
        [1usize, 2, 4].iter().map(|&t| parallel_snapshot(2, t)).collect();
    let serial = serial_snapshot(2);
    for v in &views {
        // The shared counters agree with the serial engine exactly.
        for name in ["mc_runs_total", "mc_states_total", "mc_transitions_total"] {
            assert_eq!(serial.counters[name], v.counters[name], "{name}");
        }
        // Timing-dependent metrics are declared, not silently mixed in.
        for name in ["mc_batches_flushed_total", "mc_batches_drained_total", "mc_workers"] {
            assert!(v.nondeterministic.contains(&name.to_string()), "{name} untagged");
        }
    }
    let dets: Vec<String> = views.iter().map(|v| v.deterministic().to_json()).collect();
    assert_eq!(dets[0], dets[1]);
    assert_eq!(dets[1], dets[2]);
}

#[test]
fn exposition_of_a_real_run_passes_the_prometheus_validator() {
    let text = parallel_snapshot(2, 2).to_prometheus();
    assert!(text.contains("mc_state_bytes_bucket{le=\"+Inf\"}"), "{text}");
    promcheck::validate(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
}

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ccr-metrics-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

/// Runs `ccr verify specs/migratory.ccp -n 2 --metrics -` and returns the
/// snapshot parsed from the last stdout line.
fn cli_snapshot(extra: &[&str]) -> Json {
    let out = Command::new(env!("CARGO_BIN_EXE_ccr"))
        .args(["verify", "specs/migratory.ccp", "-n", "2", "--metrics", "-"])
        .args(extra)
        .current_dir(repo_root())
        .output()
        .expect("run ccr");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let last = stdout.lines().last().expect("snapshot line");
    Json::parse(last).unwrap_or_else(|e| panic!("{e}: {last}"))
}

#[test]
fn cli_parallel_snapshot_counters_equal_the_serial_runs() {
    let serial = cli_snapshot(&[]);
    let parallel = cli_snapshot(&["--threads", "4"]);
    for name in ["mc_runs_total", "mc_states_total", "mc_transitions_total"] {
        let get = |j: &Json| j.path(&format!("counters.{name}")).and_then(Json::as_u64);
        assert_eq!(get(&serial), get(&parallel), "{name}");
        assert!(get(&serial).expect("present") > 0, "{name} vacuous");
    }
    // The verify pipeline runs through its phases either way.
    for phase in ["parse", "refine", "explore/rendezvous", "explore/async", "check/progress"] {
        assert!(
            serial.path("phases").and_then(|p| p.get(phase)).is_some(),
            "phase {phase} missing"
        );
    }
}

#[test]
fn cli_prometheus_file_output_validates() {
    let dir = tmp_dir("prom");
    let path = dir.join("metrics.prom");
    let out = Command::new(env!("CARGO_BIN_EXE_ccr"))
        .args(["verify", "specs/migratory.ccp", "-n", "2", "--threads", "2"])
        .arg("--metrics")
        .arg(&path)
        .args(["--metrics-format", "prometheus"])
        .current_dir(repo_root())
        .output()
        .expect("run ccr");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = std::fs::read_to_string(&path).expect("metrics file");
    promcheck::validate(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
    assert!(text.contains("ccr_phase_seconds"), "phases missing:\n{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_diff_exit_codes_gate_regressions() {
    let dir = tmp_dir("diff");
    let doc = |rate: f64| {
        format!(
            r#"{{"bench":"mc_perf","workloads":[{{"name":"w","states":10,"transitions":20,
              "encoded_len_bytes":8,"serial":{{"secs":1.0,"states_per_sec":{rate}}},
              "parallel":[],"store":{{"arena_bytes_per_state":20.0}}}}]}}"#
        )
    };
    let old = dir.join("old.json");
    let same = dir.join("same.json");
    let slow = dir.join("slow.json");
    std::fs::write(&old, doc(1000.0)).unwrap();
    std::fs::write(&same, doc(1000.0)).unwrap();
    std::fs::write(&slow, doc(500.0)).unwrap();
    let run = |new: &Path, extra: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_ccr"))
            .args(["bench", "diff"])
            .arg(&old)
            .arg(new)
            .args(extra)
            .output()
            .expect("run ccr bench diff")
    };
    // Identical inputs: exit 0.
    let out = run(&same, &[]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
    // A 50% throughput drop beyond the default tolerance: exit nonzero.
    let out = run(&slow, &[]);
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stdout));
    assert!(String::from_utf8_lossy(&out.stdout).contains("REGRESSION"));
    // The same drop passes when the caller loosens the gate past it.
    let out = run(&slow, &["--tolerance", "0.6"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
    // Usage errors exit 2, distinct from a regression.
    let out = run(Path::new("does-not-exist.json"), &[]);
    assert_eq!(out.status.code(), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checked_in_bench_baseline_diffs_cleanly_against_itself() {
    let baseline = repo_root().join("BENCH_mc.json");
    let out = Command::new(env!("CARGO_BIN_EXE_ccr"))
        .args(["bench", "diff"])
        .arg(&baseline)
        .arg(&baseline)
        .output()
        .expect("run ccr bench diff");
    assert!(
        out.status.success(),
        "baseline must be self-consistent: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}
