//! Flight-recorder guarantees (see docs/observability.md, "Flight
//! recorder and timelines"):
//!
//! * recording off is free *and invisible*: byte-identical traces and
//!   identical deterministic metrics snapshots either way;
//! * sample *counts* are deterministic at a fixed interval in the
//!   virtual-time test mode (a zero interval samples every observer
//!   tick, and serial ticks count expansions) — the sampled values that
//!   depend on wall clock or the host (timestamps, RSS) are
//!   nondet-tagged and never gated;
//! * `ccr timeline` round-trips a real `--run-dir` bundle into a valid,
//!   self-validated `timeline.json`;
//! * the injected-stall hook (`--inject-stall-ms`) trips the stall
//!   watchdog end to end through the CLI.

use ccr_bench::diff::{diff_strs, DiffOptions};
use ccr_core::text::parse_validated;
use ccr_mc::search::{explore_observed, Budget, SearchObserver};
use ccr_metrics::jsonval::Json;
use ccr_metrics::timeseries::{Recorder, Timeline};
use ccr_metrics::Registry;
use ccr_runtime::rendezvous::RendezvousSystem;
use ccr_trace::JsonlSink;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn spec_text(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("specs").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ccr-timeline-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

/// One traced, metered exploration of the migratory rendezvous space,
/// with or without a live flight recorder. Returns (trace bytes,
/// snapshot JSON).
fn traced_metered_run(timeline: Option<&Path>) -> (Vec<u8>, String) {
    let spec = parse_validated(&spec_text("migratory.ccp")).expect("parse");
    let sys = RendezvousSystem::new(&spec, 3);
    let registry = Registry::new();
    let recorder = match timeline {
        Some(path) => Recorder::create(path, "migratory", 0, 5).expect("create recorder"),
        None => Recorder::disabled(),
    };
    let mut sink = JsonlSink::new(Vec::new());
    let report = {
        let mut obs = SearchObserver::with_metrics(&mut sink, registry.clone())
            .with_timeline(recorder.clone());
        explore_observed(&sys, &Budget::default(), |_| None, false, &mut obs)
    };
    recorder.finish(report.outcome.name(), report.states as u64, report.transitions as u64);
    recorder.publish(&registry);
    assert!(recorder.take_error().is_none());
    (sink.into_inner().expect("vec sink"), registry.snapshot().to_json())
}

#[test]
fn recording_off_is_invisible_in_traces_and_deterministic_snapshots() {
    let dir = tmp_dir("invisible");
    let (trace_off, snap_off) = traced_metered_run(None);
    let (trace_on, snap_on) = traced_metered_run(Some(&dir.join("timeline.jsonl")));
    assert!(!trace_off.is_empty());
    assert_eq!(trace_off, trace_on, "recording must not perturb the trace stream byte for byte");
    // The recorder publishes only nondeterministic-tagged counters, so
    // the deterministic view of the two snapshots must be identical
    // (`ccr bench diff` skips nondet-tagged metrics).
    let rep = diff_strs(&snap_off, &snap_on, &DiffOptions::default()).expect("comparable");
    assert!(rep.ok(), "deterministic snapshot drifted with recording on: {:?}", rep.regressions);
    let rep = diff_strs(&snap_on, &snap_off, &DiffOptions::default()).expect("comparable");
    assert!(rep.ok(), "deterministic snapshot drifted with recording off: {:?}", rep.regressions);
}

/// One serial exploration sampled at every observer tick (zero
/// interval: virtual-time mode — pacing follows the engine's own tick
/// stream instead of the wall clock).
fn zero_interval_timeline(dir: &Path, rep: usize) -> Timeline {
    let spec = parse_validated(&spec_text("migratory.ccp")).expect("parse");
    let sys = RendezvousSystem::new(&spec, 2);
    let path = dir.join(format!("rep{rep}.jsonl"));
    let recorder = Recorder::create(&path, "migratory", 0, 5).expect("create recorder");
    let mut null = ccr_trace::NullSink;
    let report = {
        let mut obs = SearchObserver::new(&mut null)
            .with_interval(Duration::ZERO)
            .with_timeline(recorder.clone());
        explore_observed(&sys, &Budget::default(), |_| None, false, &mut obs)
    };
    recorder.finish(report.outcome.name(), report.states as u64, report.transitions as u64);
    assert!(recorder.take_error().is_none());
    let timeline = Timeline::read(&path).expect("read timeline");
    timeline.validate().expect("timeline validates");
    timeline
}

#[test]
fn sample_counts_and_progress_deltas_are_deterministic_at_zero_interval() {
    let dir = tmp_dir("det");
    let a = zero_interval_timeline(&dir, 0);
    let b = zero_interval_timeline(&dir, 1);
    assert!(!a.points.is_empty(), "zero interval must sample every tick");
    assert_eq!(a.points.len(), b.points.len(), "sample count must be deterministic");
    // The reconstructed progress sequence is deterministic; timestamps,
    // rates and RSS are wall-clock/host facts and deliberately not
    // compared.
    for (pa, pb) in a.points.iter().zip(&b.points) {
        assert_eq!(pa.states, pb.states);
        assert_eq!(pa.transitions, pb.transitions);
        assert_eq!(pa.frontier, pb.frontier);
        assert_eq!(pa.phase, pb.phase);
    }
    assert_eq!(a.end.as_ref().map(|e| e.states), b.end.as_ref().map(|e| e.states));
}

#[test]
fn cli_timeline_round_trips_a_run_dir() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let dir = tmp_dir("cli");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_ccr"))
        .args(["verify", "specs/migratory.ccp", "-n", "2", "--run-dir"])
        .arg(&dir)
        .current_dir(root)
        .output()
        .expect("run ccr");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    // The run-dir shorthand turns the recorder on; the file must parse
    // and self-validate.
    let timeline = Timeline::read(&dir.join("timeline.jsonl")).expect("timeline.jsonl written");
    timeline.validate().expect("bundle timeline validates");
    assert!(!timeline.phases.is_empty(), "verify phases must be recorded");
    assert!(timeline.end.is_some(), "end record must anchor the file");

    let analyze = std::process::Command::new(env!("CARGO_BIN_EXE_ccr"))
        .arg("timeline")
        .arg(&dir)
        .arg("--json")
        .output()
        .expect("run ccr timeline");
    assert!(analyze.status.success(), "{}", String::from_utf8_lossy(&analyze.stderr));
    let doc = Json::parse(std::str::from_utf8(&analyze.stdout).unwrap().trim())
        .expect("ccr timeline --json emits valid JSON");
    assert!(doc.get("timeline").is_some(), "document kind key");
    assert_eq!(
        doc.path("timeline.spec").and_then(Json::as_str),
        Some("specs/migratory.ccp"),
        "analysis carries the spec"
    );
    // The analyzer also writes the summary next to the source.
    let written = std::fs::read_to_string(dir.join("timeline.json")).expect("timeline.json");
    let written = Json::parse(written.trim()).expect("written summary is valid JSON");
    assert!(
        written.path("timeline.phases").and_then(Json::as_array).is_some(),
        "summary has per-phase statistics"
    );

    // The report merges the analysis under its own `timeline` key.
    let report = std::process::Command::new(env!("CARGO_BIN_EXE_ccr"))
        .arg("report")
        .arg(&dir)
        .arg("--json")
        .output()
        .expect("run report");
    assert!(report.status.success(), "{}", String::from_utf8_lossy(&report.stderr));
    let merged = Json::parse(std::str::from_utf8(&report.stdout).unwrap().trim())
        .expect("report --json emits valid JSON");
    assert_eq!(merged.path("timeline.spec").and_then(Json::as_str), Some("specs/migratory.ccp"));
}

#[test]
fn injected_stall_trips_the_watchdog_through_the_cli() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let dir = tmp_dir("stall");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_ccr"))
        .args([
            "verify",
            "specs/migratory.ccp",
            "-n",
            "2",
            "--async",
            "--threads",
            "2",
            "--inject-stall-ms",
            "1200",
            "--progress-interval",
            "0.05",
            "--stall-after",
            "4",
            "--timeline",
        ])
        .arg(dir.join("timeline.jsonl"))
        .current_dir(root)
        .output()
        .expect("run ccr");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let timeline = Timeline::read(&dir.join("timeline.jsonl")).expect("timeline written");
    timeline.validate().expect("stalled timeline validates");
    assert!(!timeline.stalls.is_empty(), "a 1200 ms injected stall must trip a 4x50 ms watchdog");
    let stall = &timeline.stalls[0];
    assert!(stall.intervals >= 4, "diagnostic carries the interval count");
    assert!(!stall.queues.is_empty(), "diagnostic carries per-worker queue depths");
}
