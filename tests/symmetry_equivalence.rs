//! Differential soundness harness for the symmetry reduction: for every
//! shipped spec the quotient search (over [`ccr_mc::Reduced`]) must agree
//! with the full concrete search — same outcome on the healthy specs,
//! same violation kind on the deliberately broken one — on both the
//! serial and the 4-thread parallel engine, at both protocol levels.
//! Counterexample trails found in the quotient must replay step for step
//! on the *unreduced* system: the reduction dedupes orbits but its
//! frontier holds concrete first-discovered representatives, so every
//! trail is a real execution, no witness permutations needed.
//!
//! The migratory case also pins the headline payoff: at `n=3` the
//! reduced asynchronous search must visit at most 1/4 of the concrete
//! states (it actually lands near the `3! = 6`× orbit bound).

use ccr_core::refine::{refine, RefineOptions};
use ccr_core::text::parse_validated;
use ccr_mc::{
    explore, explore_parallel, explore_parallel_traced_observed, explore_traced, replay_trail,
    Budget, Outcome, ParallelConfig, Reduced, SearchObserver,
};
use ccr_runtime::asynch::{AsyncConfig, AsyncSystem};
use ccr_runtime::rendezvous::RendezvousSystem;
use ccr_runtime::TransitionSystem;
use std::path::Path;

const HEALTHY: [&str; 5] =
    ["invalidate.ccp", "migratory.ccp", "migratory_gated.ccp", "token.ccp", "update.ccp"];
const BROKEN: &str = "migratory_broken.ccp";

fn load(name: &str) -> ccr_core::process::ProtocolSpec {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("specs").join(name);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    parse_validated(&text).unwrap_or_else(|e| panic!("{name}: {e}"))
}

/// Full vs reduced exploration of `sys`, serial and at 4 threads. The
/// outcomes must be identical; the reduced searches must agree with each
/// other exactly (canonicalization happens before shard hashing, so the
/// parallel quotient is as deterministic as the serial one) and must
/// never visit more states than the concrete search.
fn assert_reduction_sound<T>(sys: &T, budget: &Budget, context: &str) -> (usize, usize)
where
    T: ccr_mc::Symmetric + Sync,
    T::State: Send,
{
    let full = explore(sys, budget, |_| None, true);
    let red = Reduced::new(sys);
    let reduced = explore(&red, budget, |_| None, true);
    assert_eq!(reduced.outcome, full.outcome, "{context}: serial reduced outcome");
    assert!(
        reduced.states <= full.states,
        "{context}: quotient larger than concrete space ({} > {})",
        reduced.states,
        full.states
    );

    let par = explore_parallel(&red, budget, |_| None, true, &ParallelConfig::threads(4));
    assert_eq!(par.outcome, reduced.outcome, "{context}: parallel reduced outcome");
    assert_eq!(par.states, reduced.states, "{context}: parallel reduced states");
    assert_eq!(par.transitions, reduced.transitions, "{context}: parallel reduced transitions");
    (full.states, reduced.states)
}

#[test]
fn healthy_specs_rendezvous_level_reduced_matches_full() {
    let budget = Budget::states(500_000);
    for name in HEALTHY {
        let spec = load(name);
        let permutable = ccr_mc::spec_permutable(&spec);
        for n in [2u32, 3] {
            let sys = RendezvousSystem::new(&spec, n);
            let (full, reduced) =
                assert_reduction_sound(&sys, &budget, &format!("{name} rv n={n}"));
            if permutable && n == 3 {
                assert!(reduced < full, "{name} rv n=3: scalarset-clean spec must shrink");
            }
        }
    }
}

/// The scalarset discipline over the shipped specs: `invalidate.ccp` and
/// `update.ccp` walk their sharer sets with `first(...)` (order-sensitive
/// — the lowest-*numbered* sharer goes first), so their remotes are not
/// interchangeable and the reduction must refuse to touch them. The
/// migratory family and `token.ccp` are clean and reduce.
#[test]
fn scalarset_detection_matches_the_shipped_specs() {
    let expected = [
        ("invalidate.ccp", false),
        ("update.ccp", false),
        ("migratory.ccp", true),
        ("migratory_gated.ccp", true),
        ("migratory_broken.ccp", true),
        ("token.ccp", true),
    ];
    for (name, permutable) in expected {
        assert_eq!(ccr_mc::spec_permutable(&load(name)), permutable, "{name}");
    }
}

#[test]
fn healthy_specs_async_refinement_reduced_matches_full() {
    // Above the largest concrete space this test sweeps (invalidate at
    // n=2): every run completes, so serial and parallel counts are
    // exactly comparable (the level-synchronized parallel engine
    // overshoots a state budget by finishing its level). n=3 runs only
    // for the scalarset-clean specs — for the `first()` users the
    // reduction is the identity (proven at n=2 and on the rendezvous
    // level), and their concrete n=3 spaces are millions of states
    // (update: 4.8M), too big to sweep three times per test run.
    let budget = Budget::states(700_000);
    for name in HEALTHY {
        let spec = load(name);
        let refined = refine(&spec, &RefineOptions::default())
            .unwrap_or_else(|e| panic!("{name}: refine: {e}"));
        let ns: &[u32] = if ccr_mc::spec_permutable(&spec) { &[2, 3] } else { &[2] };
        for &n in ns {
            let sys = AsyncSystem::new(&refined, n, AsyncConfig::default());
            assert_reduction_sound(&sys, &budget, &format!("{name} async n={n}"));
        }
    }
}

/// The acceptance criterion of the reduction: migratory at `n=3` must
/// shrink to at most a quarter of the concrete asynchronous space while
/// reporting the same verdict.
#[test]
fn migratory_async_n3_shrinks_to_at_most_a_quarter() {
    let spec = load("migratory.ccp");
    let refined = refine(&spec, &RefineOptions::default()).expect("migratory refines");
    let sys = AsyncSystem::new(&refined, 3, AsyncConfig::default());
    let (full, reduced) =
        assert_reduction_sound(&sys, &Budget::states(500_000), "migratory async n=3");
    assert!(
        reduced * 4 <= full,
        "reduced search must visit <= 1/4 of the full states (full={full}, reduced={reduced})"
    );
}

/// The negative case: the broken spec must still be *caught* in the
/// quotient — same violation kind as the concrete search — and the trail
/// the reduced search reports must be a genuine concrete execution:
/// replaying it on the unreduced system must land in a state with no
/// successors.
#[test]
fn broken_spec_reduced_search_finds_replayable_concrete_deadlock() {
    let spec = load(BROKEN);
    let budget = Budget::states(500_000);
    for n in [2u32, 3] {
        let sys = RendezvousSystem::new(&spec, n);
        let full = explore_traced(&sys, &budget, |_| None, true);
        assert_eq!(full.outcome, Outcome::Deadlock, "n={n}: broken spec must deadlock");

        let red = Reduced::new(&sys);
        let serial = explore_traced(&red, &budget, |_| None, true);
        assert_eq!(serial.outcome, full.outcome, "n={n}: reduced violation kind");

        let mut null = ccr_trace::NullSink;
        let mut obs = SearchObserver::new(&mut null);
        let par = explore_parallel_traced_observed(
            &red,
            &budget,
            |_| None,
            true,
            &ParallelConfig::threads(4),
            &mut obs,
        );
        assert_eq!(par.outcome, full.outcome, "n={n}: parallel reduced violation kind");

        for (engine, trail) in [("serial", &serial.trail), ("parallel", &par.trail)] {
            let trail = trail.as_ref().unwrap_or_else(|| panic!("n={n} {engine}: missing trail"));
            let end = replay_trail(&sys, trail)
                .unwrap_or_else(|e| panic!("n={n} {engine}: concrete replay: {e}"));
            let mut succs = Vec::new();
            sys.successors(&end, &mut succs).expect("replayed state must execute");
            assert!(succs.is_empty(), "n={n} {engine}: replayed trail must end deadlocked");
        }
    }
}
