//! `ccr` — the command-line front end for the refinement pipeline.
//!
//! ```text
//! ccr fmt     <spec.ccp>                  canonical formatting
//! ccr check   <spec.ccp>                  validate the §2.4 restrictions
//! ccr refine  <spec.ccp> [--no-opt]       show pairs, costs, automata sizes
//! ccr dot     <spec.ccp> [--refined]      Graphviz to stdout
//! ccr verify  <spec.ccp> [-n N] [--budget S] [--no-opt] [--threads T]
//!             [--symmetry on|off|auto] [--trace FILE] [--progress]
//!             [--json] [--faults SPEC] [--seed N] [--fault-budget F]
//!             [--spill-dir DIR] [--spill-bytes B]
//!             [--checkpoint-interval SECS]
//!                                         full pipeline: reachability both
//!                                         levels, safety (deadlock),
//!                                         Equation 1, forward progress,
//!                                         and (opt-in) fault tolerance
//! ccr verify  --resume DIR [flags]        restart a `--spill-dir DIR` run
//!                                         from its last checkpoint; the
//!                                         spec and engine shape replay
//!                                         from DIR/meta.json
//! ccr table   <spec.ccp> [-n N..] [--threads T] [--symmetry on|off|auto]
//!             [--trace FILE] [--progress] [--json]
//!                                         per-N reachability comparison
//! ccr watch   <status-file> [--once] [--interval SECS]
//!             [--stale-timeout SECS]      tail a live run's status file
//!                                         (fails if the run died)
//! ccr report  <run-dir> [--json]          merge a run's trace, metrics,
//!                                         profile, status and timeline
//!                                         into one Markdown (or JSON)
//!                                         report
//! ccr timeline <run-dir|timeline.jsonl> [--json]
//!                                         analyze a flight-recorder
//!                                         timeline: phase rates, rate
//!                                         shifts, stalls, sparklines
//! ccr bench diff <old.json> <new.json> [--tolerance T]
//!             [--bytes-tolerance B]       perf-regression gate over
//!                                         BENCH_*.json reports or
//!                                         --metrics snapshots
//! ```
//!
//! `--threads T` (verify/table) runs the explorations and the progress
//! check on the sharded parallel engine with `T` worker threads — see
//! `docs/parallel_checking.md`. Results are observationally equivalent
//! to the serial engine; Equation 1 stays serial (it is cheap relative
//! to the asynchronous sweep).
//!
//! `--symmetry on|off|auto` (verify/table, default `auto`) dedupes
//! permutation-equivalent global states — the remotes are identical, so
//! states differing only in which remote plays which role form one orbit
//! and only a canonical representative is stored (see
//! `docs/symmetry.md`). `auto` turns the reduction on for `verify`
//! unless a fault flag is present (fault phases track per-link fault
//! ledgers that break the symmetry, so `auto` falls back to `off` and
//! says so), and leaves `table` unreduced for faithful Table 3 counts.
//! Specs that fail the scalarset check — order-sensitive primitives
//! such as `first(mask)`, as in `invalidate.ccp`/`update.ccp` — are
//! never reduced, even under `on`: the reduction would be unsound.
//! Equation 1 always runs on the concrete state spaces. Counterexample
//! trails stay concrete executions and replay on the unreduced engine.
//!
//! Observability flags (verify/table):
//!
//! * `--trace FILE` — write a JSONL event stream to FILE: search
//!   heartbeats and, on a violation, the full counterexample replayed as
//!   `Step`/`Send`/`Recv`/... events ending with an `Outcome` line (the
//!   schema is documented in `docs/observability.md`).
//! * `--progress` — print live heartbeats (states, frontier, rate) to
//!   stderr during long explorations.
//! * `--json` — emit the reports as a single machine-readable JSON
//!   document on stdout instead of the human tables (suitable for
//!   `docs/results/`).
//! * `--metrics PATH|-` — collect pipeline metrics (counters, gauges,
//!   histograms, per-phase wall times) in the `ccr-metrics` registry and
//!   write the snapshot to PATH (`-` = stdout, as the final line). With
//!   the flag absent the registry is null and the pipeline records
//!   nothing.
//! * `--metrics-format json|prometheus` — snapshot encoding (default
//!   `json`; `prometheus` writes text exposition format 0.0.4).
//! * `--profile PATH|-` — record per-worker, per-level span timelines
//!   (compute/encode/ship/drain/barrier-wait/progress) and write them as
//!   folded stacks to PATH (`-` = stdout), plus an attribution summary
//!   (human output and the `profile` key of the JSON report). See
//!   docs/observability.md, "Profiling and live runs".
//! * `--progress-interval SECS` — wall-clock heartbeat/status interval
//!   (fractional seconds, default 1.0).
//! * `--status PATH` — maintain a live status file (atomic-rename JSON)
//!   that `ccr watch PATH` can follow from another process.
//! * `--timeline PATH` — flight recorder: append one delta-encoded
//!   JSONL sample per heartbeat interval (rates, frontier, store and
//!   spill bytes, per-worker span shares, checkpoint seq, process RSS)
//!   to PATH, for `ccr timeline` analysis. Off by default; when off the
//!   run is byte-identical to one without the flag.
//! * `--stall-after K` — stall watchdog threshold: with `--timeline`,
//!   emit a stall diagnostic record (per-worker span states, queue and
//!   frontier depths, epoch counters) after K sampling intervals with
//!   no forward progress (default 5).
//! * `--inject-stall-ms MS` — fault-injection test hook: each parallel
//!   worker sleeps MS milliseconds once before its first expansion, so
//!   CI can provoke the stall watchdog deterministically.
//! * `--run-dir DIR` — shorthand: write trace.jsonl, metrics.json,
//!   profile.folded, status.json, timeline.jsonl and verify.json under
//!   DIR (creating it), ready for `ccr report DIR`. Explicit flags win
//!   over the shorthand paths.
//! * `--async` (verify) — async-level-only mode: skip the rendezvous
//!   level, Equation 1, progress and fault phases; explore only the
//!   refined asynchronous level. This is the engine-profiling loop:
//!   one phase, one state space.
//!
//! Persistence flags (verify only, see `docs/persistence.md`):
//!
//! * `--spill-dir DIR` — checkpoint the two reachability sweeps into
//!   per-phase subdirectories of DIR (`rendezvous/`, `async/`): an
//!   append-only state log with a hash index, a writer lock, and an
//!   atomically renamed manifest, plus a `meta.json` recording the
//!   engine shape for `--resume`. A killed run restarts from its last
//!   checkpoint and finishes with byte-identical counts.
//! * `--spill-bytes B` — in-memory byte budget for each sweep's visited
//!   set; past it, state payloads are evicted to the log and re-read on
//!   demand (0, the default, keeps everything in RAM: crash-safe but
//!   not RAM-capped).
//! * `--checkpoint-interval SECS` — wall-clock checkpoint cadence
//!   (default 1.0; 0 checkpoints at every opportunity).
//! * `--resume DIR` — resume a `--spill-dir DIR` run. Takes the place
//!   of the spec positional: the spec path and engine shape come from
//!   `DIR/meta.json` (flags after `--resume` still override). Phases
//!   whose manifest is terminal are restored without re-searching;
//!   corrupt or truncated-below-manifest logs fail with a diagnostic.
//! * `--crash-after-states N` — test hook for the crash-recovery
//!   harness: abort the process (as kill -9) after N newly inserted
//!   states.
//!
//! Fault-injection flags (verify only, see `docs/fault_injection.md`):
//!
//! * `--faults SPEC` — after the clean pipeline passes, run seeded random
//!   walks through the wire-fault harness. SPEC is comma-separated
//!   `kind=rate` pairs, e.g. `drop=0.05,dup=0.02`; kinds are `drop`,
//!   `dup`, `reorder`, `delay`.
//! * `--seed N` — base seed for the fault walks (default 0); the same
//!   spec + seed reproduces the same faults byte for byte.
//! * `--fault-budget F` — model-check the fault closure: prove safety and
//!   progress under every placement of up to `F` drop/duplicate faults.
//!
//! Specs are written in the textual form of `ccr_core::text` — see the
//! bundled files under `specs/`.

use ccr_core::dot::{dot_automaton, dot_spec};
use ccr_core::refine::{refine, RefineOptions, ReqRepMode};
use ccr_core::text::{parse_validated, to_text};
use ccr_faults::{parse_fault_spec, FaultPlan, FaultRates, FaultSpec, FaultStats};
use ccr_mc::faultmode::{check_fault_closure_observed, check_fault_closure_parallel_observed};
use ccr_mc::parallel::{
    explore_parallel_traced_observed, explore_parallel_traced_observed_persist, ParallelConfig,
    ParallelPersist, ParallelPersistOpen,
};
use ccr_mc::progress::{check_progress_observed, check_progress_parallel_observed};
use ccr_mc::report::ExploreReport;
use ccr_mc::search::{
    explore_observed, report_from_manifest, Budget, PersistOpts, SearchObserver, SerialPersist,
    SerialPersistOpen, StatusReporter, DEFAULT_HEARTBEAT_INTERVAL,
};
use ccr_mc::simrel::check_simulation;
use ccr_mc::trace::{explore_traced_observed, explore_traced_observed_persist, TracedReport};
use ccr_mc::{CrashSwitch, Manifest, Reduced, Symmetric};
use ccr_metrics::jsonval::Json;
use ccr_metrics::profile::{parse_folded, ProfileAgg, Profiler, SpanKind};
use ccr_metrics::status::{RunStatus, StatusWriter};
use ccr_metrics::timeseries::{
    process_rss_bytes, sparkline, Recorder, Timeline, DEFAULT_STALL_AFTER,
};
use ccr_metrics::Registry;
use ccr_runtime::asynch::{AsyncConfig, AsyncSystem};
use ccr_runtime::rendezvous::RendezvousSystem;
use ccr_runtime::sched::RandomSched;
use ccr_runtime::sim::Simulator;
use ccr_runtime::{FaultHarness, TransitionSystem};
use ccr_trace::{JsonlSink, NullSink, TeeSink, TraceEvent, TraceSink};
use serde::{MapSer, Serialize, Serializer};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// Number of seeded random walks run by `verify --faults`.
const FAULT_WALKS: u32 = 3;

/// Steps per fault walk (scheduler decisions, including recovery waits).
const FAULT_WALK_STEPS: u64 = 20_000;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ccr <fmt|check|refine|dot|verify|table> <spec.ccp> \
         [-n N] [--budget STATES] [--no-opt] [--refined] [--threads T] \
         [--symmetry on|off|auto] [--trace FILE] [--progress] [--json] \
         [--metrics PATH|-] [--metrics-format json|prometheus] \
         [--profile PATH|-] [--progress-interval SECS] [--status PATH] \
         [--run-dir DIR] [--async] \
         [--timeline PATH] [--stall-after K] [--inject-stall-ms MS] \
         [--spill-dir DIR] [--spill-bytes B] [--checkpoint-interval SECS] \
         [--crash-after-states N] \
         [--faults SPEC] [--seed N] [--fault-budget F]\n\
         \x20      ccr verify --resume <spill-dir> [flags]\n\
         \x20      ccr watch <status-file> [--once] [--interval SECS] \
         [--timeout SECS] [--stale-timeout SECS]\n\
         \x20      ccr report <run-dir> [--json]\n\
         \x20      ccr timeline <run-dir|timeline.jsonl> [--json]\n\
         \x20      ccr fuzz [--seed S] [--count N] [-n N] [--budget STATES] \
         [--fault-budget F] [--shrink] [--corpus DIR] [--inject-broken] [--json]\n\
         \x20      ccr bench diff <old.json> <new.json> \
         [--tolerance T] [--bytes-tolerance B]"
    );
    ExitCode::from(2)
}

struct Args {
    cmd: String,
    file: String,
    n: u32,
    budget: usize,
    no_opt: bool,
    refined: bool,
    trace: Option<String>,
    progress: bool,
    json: bool,
    faults: Option<String>,
    seed: u64,
    fault_budget: Option<u32>,
    threads: usize,
    threads_explicit: bool,
    symmetry: Symmetry,
    metrics: Option<String>,
    metrics_format: MetricsFormat,
    profile: Option<String>,
    progress_interval: Duration,
    status: Option<String>,
    run_dir: Option<String>,
    timeline: Option<String>,
    stall_after: u32,
    inject_stall_ms: u64,
    async_only: bool,
    spill_dir: Option<String>,
    spill_bytes: usize,
    checkpoint_interval: Duration,
    resume: bool,
    crash_after: Option<u64>,
}

impl Args {
    /// Worker count handed to the search helpers: 0 selects the serial
    /// engine; any explicit `--threads T` — including `T = 1` — selects
    /// the sharded parallel engine. A 1-worker parallel run is how the
    /// engine's coordination overhead (ship/drain/barrier-wait spans) is
    /// measured against the serial baseline.
    fn engine_threads(&self) -> usize {
        if self.threads_explicit {
            self.threads
        } else {
            0
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum MetricsFormat {
    Json,
    Prometheus,
}

/// The `--symmetry` mode: whether to dedupe permutation-equivalent
/// states during exploration (see `docs/symmetry.md`).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    On,
    Off,
    Auto,
}

/// Pulls the value of a flag that takes one, usage error otherwise.
fn req(it: &mut std::vec::IntoIter<String>) -> Result<String, ExitCode> {
    it.next().ok_or_else(usage)
}

/// Parses a flag value, usage error on malformed input.
fn num<T: std::str::FromStr>(s: String) -> Result<T, ExitCode> {
    s.parse().map_err(|_| usage())
}

/// Replays the engine-shaping arguments recorded in `<dir>/meta.json`
/// by the run being resumed, so the resumed search rebuilds the state
/// space the checkpoint belongs to. Flags given alongside `--resume`
/// still override — `--threads` is safe (checkpoints are thread-count
/// agnostic), though serial and parallel checkpoints don't mix and a
/// parallel manifest pins its shard count.
fn apply_resume_meta(out: &mut Args, dir: &str) -> Result<(), ExitCode> {
    let path = format!("{dir}/meta.json");
    let fail = |msg: String| {
        eprintln!("ccr: cannot resume {dir}: {msg}");
        ExitCode::FAILURE
    };
    let text = std::fs::read_to_string(&path).map_err(|e| fail(format!("{path}: {e}")))?;
    let j = Json::parse(&text).map_err(|e| fail(format!("{path}: {e}")))?;
    out.file = j
        .get("spec")
        .and_then(Json::as_str)
        .ok_or_else(|| fail(format!("{path}: no \"spec\" entry")))?
        .to_string();
    if let Some(v) = j.get("n").and_then(Json::as_u64) {
        out.n = v as u32;
    }
    if let Some(v) = j.get("budget_states").and_then(Json::as_u64) {
        out.budget = v as usize;
    }
    if let Some(v) = j.get("no_opt").and_then(Json::as_bool) {
        out.no_opt = v;
    }
    if let Some(v) = j.get("engine_threads").and_then(Json::as_u64) {
        out.threads_explicit = v > 0;
        out.threads = (v as usize).max(1);
    }
    if let Some(v) = j.get("symmetry").and_then(Json::as_str) {
        out.symmetry = if v == "on" { Symmetry::On } else { Symmetry::Off };
    }
    if let Some(v) = j.get("async_only").and_then(Json::as_bool) {
        out.async_only = v;
    }
    if let Some(v) = j.get("spill_bytes").and_then(Json::as_u64) {
        out.spill_bytes = v as usize;
    }
    if let Some(v) = j.get("checkpoint_interval_ms").and_then(Json::as_u64) {
        out.checkpoint_interval = Duration::from_millis(v);
    }
    Ok(())
}

/// Argument parser. A parse failure carries the exit code to return:
/// `usage()`'s code 2 for syntax errors, `FAILURE` after a printed
/// diagnostic (e.g. an unreadable `--resume` meta file).
fn parse_args() -> Result<Args, ExitCode> {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        return Err(usage());
    }
    let cmd = argv.remove(0);
    let mut out = Args {
        cmd,
        file: String::new(),
        n: 2,
        budget: 2_000_000,
        no_opt: false,
        refined: false,
        trace: None,
        progress: false,
        json: false,
        faults: None,
        seed: 0,
        fault_budget: None,
        threads: 1,
        threads_explicit: false,
        symmetry: Symmetry::Auto,
        metrics: None,
        metrics_format: MetricsFormat::Json,
        profile: None,
        progress_interval: DEFAULT_HEARTBEAT_INTERVAL,
        status: None,
        run_dir: None,
        timeline: None,
        stall_after: DEFAULT_STALL_AFTER,
        inject_stall_ms: 0,
        async_only: false,
        spill_dir: None,
        spill_bytes: 0,
        checkpoint_interval: Duration::from_secs(1),
        resume: false,
        crash_after: None,
    };
    // `--resume DIR` stands in for the spec positional: the spec path
    // and engine shape are replayed from DIR/meta.json.
    if let Some(pos) = argv.iter().position(|a| a == "--resume") {
        if pos + 1 >= argv.len() {
            return Err(usage());
        }
        let dir = argv.remove(pos + 1);
        argv.remove(pos);
        apply_resume_meta(&mut out, &dir)?;
        out.spill_dir = Some(dir);
        out.resume = true;
    } else {
        if argv.is_empty() || argv[0].starts_with('-') {
            return Err(usage());
        }
        out.file = argv.remove(0);
    }
    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-n" => out.n = num(req(&mut it)?)?,
            "--budget" => out.budget = num(req(&mut it)?)?,
            "--no-opt" => out.no_opt = true,
            "--refined" => out.refined = true,
            "--trace" => out.trace = Some(req(&mut it)?),
            "--progress" => out.progress = true,
            "--json" => out.json = true,
            "--faults" => out.faults = Some(req(&mut it)?),
            "--seed" => out.seed = num(req(&mut it)?)?,
            "--fault-budget" => out.fault_budget = Some(num(req(&mut it)?)?),
            "--threads" => {
                out.threads = num(req(&mut it)?)?;
                if out.threads < 1 {
                    return Err(usage());
                }
                out.threads_explicit = true;
            }
            "--symmetry" => {
                out.symmetry = match req(&mut it)?.as_str() {
                    "on" => Symmetry::On,
                    "off" => Symmetry::Off,
                    "auto" => Symmetry::Auto,
                    _ => return Err(usage()),
                }
            }
            "--metrics" => out.metrics = Some(req(&mut it)?),
            "--metrics-format" => {
                out.metrics_format = match req(&mut it)?.as_str() {
                    "json" => MetricsFormat::Json,
                    "prometheus" => MetricsFormat::Prometheus,
                    _ => return Err(usage()),
                }
            }
            "--profile" => out.profile = Some(req(&mut it)?),
            "--progress-interval" => {
                let secs: f64 = num(req(&mut it)?)?;
                if secs < 0.0 {
                    return Err(usage());
                }
                out.progress_interval = Duration::from_secs_f64(secs);
            }
            "--status" => out.status = Some(req(&mut it)?),
            "--run-dir" => out.run_dir = Some(req(&mut it)?),
            "--timeline" => out.timeline = Some(req(&mut it)?),
            "--stall-after" => {
                out.stall_after = num(req(&mut it)?)?;
                if out.stall_after < 1 {
                    return Err(usage());
                }
            }
            "--inject-stall-ms" => out.inject_stall_ms = num(req(&mut it)?)?,
            "--async" => out.async_only = true,
            "--spill-dir" => {
                if out.resume {
                    eprintln!(
                        "ccr: --spill-dir conflicts with --resume (the resume \
                         directory is the spill directory)"
                    );
                    return Err(ExitCode::from(2));
                }
                out.spill_dir = Some(req(&mut it)?);
            }
            "--spill-bytes" => out.spill_bytes = num(req(&mut it)?)?,
            "--checkpoint-interval" => {
                let secs: f64 = num(req(&mut it)?)?;
                if secs < 0.0 {
                    return Err(usage());
                }
                out.checkpoint_interval = Duration::from_secs_f64(secs);
            }
            "--crash-after-states" => out.crash_after = Some(num(req(&mut it)?)?),
            _ => return Err(usage()),
        }
    }
    if out.cmd != "verify" && (out.spill_dir.is_some() || out.crash_after.is_some()) {
        eprintln!("ccr: --spill-dir/--resume/--crash-after-states apply to `verify` only");
        return Err(ExitCode::from(2));
    }
    if out.crash_after.is_some() && out.spill_dir.is_none() {
        eprintln!(
            "ccr: --crash-after-states needs --spill-dir (it exercises the \
             crash-recovery harness)"
        );
        return Err(ExitCode::from(2));
    }
    // `--run-dir DIR` is shorthand for the per-artifact flags; explicit
    // flags win.
    if let Some(dir) = &out.run_dir {
        let join = |name: &str| format!("{dir}/{name}");
        out.trace.get_or_insert_with(|| join("trace.jsonl"));
        out.metrics.get_or_insert_with(|| join("metrics.json"));
        out.profile.get_or_insert_with(|| join("profile.folded"));
        out.status.get_or_insert_with(|| join("status.json"));
        out.timeline.get_or_insert_with(|| join("timeline.jsonl"));
    }
    Ok(out)
}

/// Records the engine-shaping arguments of a spill run in
/// `<root>/meta.json`, so `--resume <root>` can replay them without the
/// spec positional. `symmetry` is stored resolved (`on`/`off`), never
/// as the `auto` request: the reduction decides which state space the
/// logs encode, and a resume must rebuild the same one.
fn write_meta(root: &Path, args: &Args, reduce: bool) -> Result<(), ExitCode> {
    let mut s = Serializer::new();
    {
        let mut m = s.begin_map();
        m.entry("spec", args.file.as_str());
        m.entry("n", &args.n);
        m.entry("budget_states", &args.budget);
        m.entry("no_opt", &args.no_opt);
        m.entry("engine_threads", &args.engine_threads());
        m.entry("symmetry", if reduce { "on" } else { "off" });
        m.entry("async_only", &args.async_only);
        m.entry("spill_bytes", &args.spill_bytes);
        m.entry("checkpoint_interval_ms", &(args.checkpoint_interval.as_millis() as u64));
        m.end();
    }
    let path = root.join("meta.json");
    std::fs::write(&path, format!("{}\n", s.into_string())).map_err(|e| {
        eprintln!("ccr: cannot write {}: {e}", path.display());
        ExitCode::FAILURE
    })
}

/// Prints `Heartbeat` events to stderr as live progress lines; every
/// other event is dropped.
struct ProgressSink;

impl TraceSink for ProgressSink {
    fn emit(&mut self, ev: &TraceEvent) {
        if let TraceEvent::Heartbeat { states, frontier, store_bytes, states_per_sec, elapsed_ms } =
            ev
        {
            eprintln!(
                "  [{:>7} ms] {} states, frontier {}, {} KB, {} states/s",
                elapsed_ms,
                states,
                frontier,
                store_bytes / 1024,
                states_per_sec
            );
        }
    }
}

/// Traced exploration (deadlock check on, no invariant) on the serial or
/// the sharded parallel engine, depending on `--threads`.
fn explore_cli<T>(
    sys: &T,
    budget: &Budget,
    threads: usize,
    stall_ms: u64,
    obs: &mut SearchObserver<'_>,
) -> TracedReport
where
    T: TransitionSystem + Sync,
    T::State: Send,
{
    if threads > 0 {
        let mut cfg = ParallelConfig::threads(threads).with_trails();
        cfg.stall_ms = stall_ms;
        explore_parallel_traced_observed(sys, budget, |_| None, true, &cfg, obs).traced_report()
    } else {
        explore_traced_observed(sys, budget, |_| None, true, obs)
    }
}

/// Plain exploration (for `ccr table`) on the serial or parallel engine.
fn explore_plain_cli<T>(
    sys: &T,
    budget: &Budget,
    threads: usize,
    obs: &mut SearchObserver<'_>,
) -> ExploreReport
where
    T: TransitionSystem + Sync,
    T::State: Send,
{
    if threads > 0 {
        let cfg = ParallelConfig::threads(threads);
        ccr_mc::parallel::explore_parallel_observed(sys, budget, |_| None, false, &cfg, obs)
            .explore_report()
    } else {
        explore_observed(sys, budget, |_| None, false, obs)
    }
}

/// [`explore_cli`] over the symmetry-reduced quotient when `reduce` is
/// set (orbit metrics flushed to `registry`), the concrete system
/// otherwise. Trails are concrete either way: the reduced frontier
/// holds first-discovered orbit representatives and real labels.
fn explore_cli_sym<T>(
    sys: &T,
    reduce: bool,
    budget: &Budget,
    threads: usize,
    stall_ms: u64,
    obs: &mut SearchObserver<'_>,
    registry: &Registry,
) -> TracedReport
where
    T: Symmetric + Sync,
    T::State: Send,
{
    if reduce {
        let red = Reduced::new(sys);
        let report = explore_cli(&red, budget, threads, stall_ms, obs);
        red.record_metrics(registry);
        report
    } else {
        explore_cli(sys, budget, threads, stall_ms, obs)
    }
}

/// Persisted variant of [`explore_cli`]: the sweep checkpoints into the
/// phase directory `root` (layout in `docs/persistence.md`), and a
/// phase whose manifest is already terminal short-circuits to the
/// restored report — the `bool` in the result. Open failures (foreign
/// lock, corrupt manifest, log truncated below its committed prefix,
/// unwritable directory) surface as `Err` carrying the offending path.
fn explore_cli_persist<T>(
    sys: &T,
    budget: &Budget,
    threads: usize,
    obs: &mut SearchObserver<'_>,
    root: &Path,
    popts: &PersistOpts,
) -> Result<(TracedReport, bool), String>
where
    T: TransitionSystem + Sync,
    T::State: Send,
{
    let restored = |m: &Manifest| {
        let r = report_from_manifest(m);
        TracedReport {
            states: r.states,
            transitions: r.transitions,
            outcome: r.outcome,
            trail: None,
        }
    };
    if threads > 0 {
        let cfg = ParallelConfig::threads(threads).with_trails();
        match ParallelPersist::open(root, popts, &cfg).map_err(|e| e.to_string())? {
            ParallelPersistOpen::Finished(m) => Ok((restored(&m), true)),
            ParallelPersistOpen::Run(p) => Ok((
                explore_parallel_traced_observed_persist(
                    sys,
                    budget,
                    |_| None,
                    true,
                    &cfg,
                    obs,
                    &p,
                )
                .traced_report(),
                false,
            )),
        }
    } else {
        match SerialPersist::open(root, popts).map_err(|e| e.to_string())? {
            SerialPersistOpen::Finished(m) => Ok((restored(&m), true)),
            SerialPersistOpen::Run(mut p) => Ok((
                explore_traced_observed_persist(sys, budget, |_| None, true, obs, &mut p),
                false,
            )),
        }
    }
}

/// [`explore_cli_persist`] over the symmetry-reduced quotient when
/// `reduce` is set, as in [`explore_cli_sym`]. The logs then hold
/// canonical orbit representatives — which is why `meta.json` records
/// the resolved reduction choice for `--resume` to replay.
#[allow(clippy::too_many_arguments)]
fn explore_cli_sym_persist<T>(
    sys: &T,
    reduce: bool,
    budget: &Budget,
    threads: usize,
    obs: &mut SearchObserver<'_>,
    registry: &Registry,
    root: &Path,
    popts: &PersistOpts,
) -> Result<(TracedReport, bool), String>
where
    T: Symmetric + Sync,
    T::State: Send,
{
    if reduce {
        let red = Reduced::new(sys);
        let report = explore_cli_persist(&red, budget, threads, obs, root, popts)?;
        red.record_metrics(registry);
        Ok(report)
    } else {
        explore_cli_persist(sys, budget, threads, obs, root, popts)
    }
}

/// [`explore_plain_cli`] with optional symmetry reduction, as in
/// [`explore_cli_sym`].
fn explore_plain_cli_sym<T>(
    sys: &T,
    reduce: bool,
    budget: &Budget,
    threads: usize,
    obs: &mut SearchObserver<'_>,
    registry: &Registry,
) -> ExploreReport
where
    T: Symmetric + Sync,
    T::State: Send,
{
    if reduce {
        let red = Reduced::new(sys);
        let report = explore_plain_cli(&red, budget, threads, obs);
        red.record_metrics(registry);
        report
    } else {
        explore_plain_cli(sys, budget, threads, obs)
    }
}

/// The progress check (serial or parallel per `--threads`) with optional
/// symmetry reduction. Sound on the quotient: progress labels are
/// permutation-invariant (`completes` carries an actor, but whether *a*
/// completion exists from a state is an orbit property).
fn progress_cli_sym<T>(
    sys: &T,
    reduce: bool,
    budget: &Budget,
    threads: usize,
    obs: &mut SearchObserver<'_>,
    registry: &Registry,
) -> ccr_mc::report::ProgressReport
where
    T: Symmetric + Sync,
    T::State: Send,
{
    fn run<S>(
        sys: &S,
        budget: &Budget,
        threads: usize,
        obs: &mut SearchObserver<'_>,
    ) -> ccr_mc::report::ProgressReport
    where
        S: TransitionSystem + Sync,
        S::State: Send,
    {
        if threads > 0 {
            check_progress_parallel_observed(
                sys,
                budget,
                |l| l.completes.is_some(),
                &ParallelConfig::threads(threads),
                obs,
            )
        } else {
            check_progress_observed(sys, budget, |l| l.completes.is_some(), obs)
        }
    }
    if reduce {
        let red = Reduced::new(sys);
        let report = run(&red, budget, threads, obs);
        red.record_metrics(registry);
        report
    } else {
        run(sys, budget, threads, obs)
    }
}

/// Builds the `--status` writer, creating missing parent directories up
/// front so an unwritable location is a clean error with the offending
/// path instead of silently dropped heartbeats.
fn status_writer_for(args: &Args) -> Result<Option<StatusWriter>, ExitCode> {
    let Some(path) = &args.status else {
        return Ok(None);
    };
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("ccr: cannot create {}: {e}", parent.display());
                return Err(ExitCode::FAILURE);
            }
        }
    }
    Ok(Some(StatusWriter::create(path.as_str())))
}

/// Builds the `--timeline` flight recorder, creating missing parent
/// directories up front as for `--status`. Disabled (a one-branch null
/// object) when the flag is absent.
fn recorder_for(args: &Args) -> Result<Recorder, ExitCode> {
    let Some(path) = &args.timeline else {
        return Ok(Recorder::disabled());
    };
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("ccr: cannot create {}: {e}", parent.display());
                return Err(ExitCode::FAILURE);
            }
        }
    }
    Recorder::create(
        Path::new(path),
        &args.file,
        args.progress_interval.as_millis() as u64,
        args.stall_after,
    )
    .map_err(|e| {
        eprintln!("ccr: cannot create {path}: {e}");
        ExitCode::FAILURE
    })
}

/// The `--trace` file sink (or a null sink when the flag is absent).
fn file_sink(trace: &Option<String>) -> Result<Box<dyn TraceSink>, ExitCode> {
    match trace {
        Some(path) => match JsonlSink::create(path) {
            Ok(s) => Ok(Box::new(s)),
            Err(e) => {
                eprintln!("ccr: cannot create {path}: {e}");
                Err(ExitCode::FAILURE)
            }
        },
        None => Ok(Box::new(NullSink)),
    }
}

/// Result of the seeded random-walk phase of `ccr verify --faults`.
#[derive(Debug, Serialize)]
struct FaultWalkReport {
    /// Base seed; walk `w` uses `seed + w`.
    seed: u64,
    /// The `--faults` spec as given on the command line.
    rates: String,
    /// Number of independent walks.
    walks: u32,
    /// Scheduler decisions per walk (recovery waits included).
    steps_per_walk: u64,
    /// Rendezvous completions across all faulted walks.
    completed: u64,
    /// Wire messages across all faulted walks, retransmission attempts
    /// included — they consume bandwidth even when lost again.
    messages: u64,
    /// Messages per completion under faults.
    msgs_per_completion: Option<f64>,
    /// Messages per completion of the clean twin runs (same seeds).
    clean_msgs_per_completion: Option<f64>,
    /// Faulted over clean messages-per-completion.
    degradation: Option<f64>,
    /// True if any walk wedged with no recovery pending.
    deadlocked: bool,
    /// Runtime error that aborted a walk — typically a reorder fault
    /// surfacing the protocol's FIFO assumption (e.g. a request overtaking
    /// a writeback). Unlike drops and duplicates, reorders are not masked
    /// by the recovery layer, so this is the probe working as intended.
    error: Option<String>,
    /// Aggregated injection/recovery counters.
    faults: FaultStats,
}

impl FaultWalkReport {
    /// The walks pass when every run kept completing rendezvous.
    fn holds(&self) -> bool {
        self.error.is_none() && !self.deadlocked && self.completed > 0
    }
}

/// Folds aggregated injection/recovery counters into the registry (the
/// `fault_*` family). The walks are seeded, so given the same spec and
/// seed these are deterministic.
fn publish_fault_stats(reg: &Registry, fs: &FaultStats) {
    if !reg.enabled() {
        return;
    }
    let c = |name: &str, help: &str, v: u64| reg.counter(name, help).add(v);
    c("fault_drops_total", "Messages dropped by the fault plan", fs.drops);
    c("fault_dups_total", "Messages duplicated by the fault plan", fs.dups);
    c("fault_reorders_total", "Messages reordered by the fault plan", fs.reorders);
    c("fault_delays_total", "Messages delayed by the fault plan", fs.delays);
    c("fault_retransmits_total", "Retransmission attempts by the recovery layer", fs.retransmits);
    c("fault_recovered_total", "Faults recovered by retransmission", fs.recovered);
    c("fault_absorbed_total", "Faults absorbed without a retransmission", fs.absorbed);
}

/// Runs `FAULT_WALKS` seeded random walks of `asys` through the fault
/// harness, plus a clean twin per walk (same scheduler seed, no faults)
/// for the degradation baseline. Fault events stream to `sink`.
fn run_fault_walks(
    asys: &AsyncSystem<'_>,
    rates: FaultRates,
    spec_text: &str,
    seed: u64,
    sink: &mut dyn TraceSink,
    reg: &Registry,
) -> FaultWalkReport {
    let mut faults = FaultStats::default();
    let mut completed = 0u64;
    let mut messages = 0u64;
    let mut clean_completed = 0u64;
    let mut clean_messages = 0u64;
    let mut deadlocked = false;
    let mut error = None;
    'walks: for w in 0..FAULT_WALKS {
        let wseed = seed.wrapping_add(u64::from(w));
        let sched_seed = wseed ^ 0x5EED_CAB1;

        let mut sim = Simulator::new(asys);
        let mut sched = RandomSched::new(sched_seed);
        match sim.run(&mut sched, FAULT_WALK_STEPS) {
            Ok(clean) => {
                clean_completed += clean.stats.total_completed();
                clean_messages += clean.stats.total_messages();
            }
            Err(e) => {
                error = Some(format!("clean twin: {e}"));
                break;
            }
        }

        let plan = FaultPlan::new(FaultSpec::with_rates(rates), wseed);
        let mut harness = FaultHarness::new(plan);
        let mut sim = Simulator::new(asys);
        let mut sched = RandomSched::new(sched_seed);
        for _ in 0..FAULT_WALK_STEPS {
            let fired = match harness.step(&mut sim, &mut sched, |_| true, sink) {
                Ok(f) => f,
                Err(e) => {
                    error = Some(e.to_string());
                    completed += sim.stats().total_completed();
                    messages += sim.stats().total_messages() + harness.stats().retransmits;
                    faults.merge(harness.stats());
                    sim.stats().publish(reg);
                    break 'walks;
                }
            };
            if fired.is_none() && harness.pending_recoveries() == 0 {
                let mut succ = Vec::new();
                match asys.successors(sim.state(), &mut succ) {
                    Ok(()) => {}
                    Err(e) => {
                        error = Some(e.to_string());
                        succ.clear();
                    }
                }
                if succ.is_empty() {
                    deadlocked = error.is_none();
                    break;
                }
            }
        }
        completed += sim.stats().total_completed();
        messages += sim.stats().total_messages() + harness.stats().retransmits;
        faults.merge(harness.stats());
        sim.stats().publish(reg);
        if error.is_some() {
            break;
        }
    }
    publish_fault_stats(reg, &faults);
    let per_op = |msgs: u64, ops: u64| (ops > 0).then(|| msgs as f64 / ops as f64);
    let msgs_per_completion = per_op(messages, completed);
    let clean_msgs_per_completion = per_op(clean_messages, clean_completed);
    let degradation = match (msgs_per_completion, clean_msgs_per_completion) {
        (Some(a), Some(b)) if b > 0.0 => Some(a / b),
        _ => None,
    };
    FaultWalkReport {
        seed,
        rates: spec_text.to_owned(),
        walks: FAULT_WALKS,
        steps_per_walk: FAULT_WALK_STEPS,
        completed,
        messages,
        msgs_per_completion,
        clean_msgs_per_completion,
        degradation,
        deadlocked,
        error,
        faults,
    }
}

/// Writes the registry snapshot to `--metrics` (stdout for `-`), in the
/// `--metrics-format` encoding. No-op when the flag is absent.
fn write_metrics(args: &Args, registry: &Registry) -> Result<(), ExitCode> {
    let Some(path) = &args.metrics else {
        return Ok(());
    };
    // Memory pressure at snapshot time. Nondet-tagged: RSS depends on
    // allocator behavior and the host, never on the state space.
    if let Some(rss) = process_rss_bytes() {
        registry
            .gauge_nondet("mc_rss_bytes", "Resident set size of the process at snapshot time")
            .record_max(rss);
    }
    let snap = registry.snapshot();
    let text = match args.metrics_format {
        MetricsFormat::Json => snap.to_json(),
        MetricsFormat::Prometheus => snap.to_prometheus(),
    };
    if path == "-" {
        println!("{text}");
        return Ok(());
    }
    std::fs::write(path, format!("{text}\n")).map_err(|e| {
        eprintln!("ccr: cannot write {path}: {e}");
        ExitCode::FAILURE
    })
}

/// Builds one phase's observer: metrics + heartbeat interval + profiler,
/// plus a status reporter when `--status` asked for one.
fn observer<'s>(
    sink: &'s mut dyn TraceSink,
    registry: &Registry,
    profiler: &Profiler,
    args: &Args,
    status_writer: &Option<StatusWriter>,
    timeline: &Recorder,
    phase: &str,
) -> SearchObserver<'s> {
    let mut obs = SearchObserver::with_metrics(sink, registry.clone())
        .with_interval(args.progress_interval)
        .with_profiler(profiler.clone());
    if let Some(writer) = status_writer {
        let mut rep = StatusReporter::new(writer.clone(), &args.file);
        rep.set_phase(phase);
        // ETA against the state budget: an upper bound on remaining
        // work, not a prediction of the reachable-set size.
        rep.set_target(Some(args.budget as u64));
        obs = obs.with_status(rep);
    }
    if timeline.enabled() {
        timeline.set_phase(phase);
        obs = obs.with_timeline(timeline.clone());
    }
    obs
}

fn share(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

/// Nanoseconds across the parallel engine's exchange machinery — the
/// "how much of the run is overhead, not search" bucket the roadmap's
/// parallel-performance work keys on.
fn sync_overhead_nanos(agg: &ProfileAgg) -> u64 {
    [SpanKind::Ship, SpanKind::Drain, SpanKind::BarrierWait]
        .iter()
        .map(|k| agg.kind(*k).nanos)
        .sum()
}

/// Appends the per-worker attribution breakdown as the `profile` key of
/// a JSON report map.
fn profile_entry(m: &mut MapSer<'_>, agg: &ProfileAgg) {
    let totals = agg.totals();
    let grand: u64 = totals.iter().map(|t| t.nanos).sum();
    m.entry_with("profile", |ser| {
        let mut p = ser.begin_map();
        p.entry("total_secs", &(grand as f64 / 1e9));
        p.entry_with("totals", |ser| {
            let mut t = ser.begin_map();
            for (k, kind) in SpanKind::ALL.iter().enumerate() {
                if totals[k].nanos == 0 && totals[k].count == 0 {
                    continue;
                }
                t.entry_with(kind.name(), |ser| {
                    let mut cell = ser.begin_map();
                    cell.entry("secs", &totals[k].secs());
                    cell.entry("count", &totals[k].count);
                    cell.entry("share", &share(totals[k].nanos, grand));
                    cell.end();
                });
            }
            t.end();
        });
        p.entry_with("workers", |ser| {
            let mut seq = ser.begin_seq();
            for w in &agg.workers {
                seq.elem_with(|ser| {
                    let mut wm = ser.begin_map();
                    wm.entry("worker", &w.worker);
                    wm.entry("secs", &(w.total_nanos() as f64 / 1e9));
                    wm.entry_with("share", |ser| {
                        let mut sm = ser.begin_map();
                        for kind in SpanKind::ALL {
                            let t = w.kind(kind);
                            if t.nanos > 0 {
                                sm.entry(kind.name(), &share(t.nanos, w.total_nanos()));
                            }
                        }
                        sm.end();
                    });
                    wm.end();
                });
            }
            seq.end();
        });
        p.entry("sync_overhead_share", &share(sync_overhead_nanos(agg), grand));
        p.end();
    });
}

/// Prints the per-worker attribution table (human output).
fn print_attribution(agg: &ProfileAgg) {
    if agg.is_empty() {
        return;
    }
    for w in &agg.workers {
        let total = w.total_nanos().max(1);
        let cells: Vec<String> = SpanKind::ALL
            .iter()
            .filter(|k| w.kind(**k).nanos > 0)
            .map(|k| format!("{} {:.1}%", k.name(), w.kind(*k).nanos as f64 * 100.0 / total as f64))
            .collect();
        println!("profile: worker {} ({:.4}s): {}", w.worker, total as f64 / 1e9, cells.join(", "));
    }
    let grand = agg.total_nanos();
    println!(
        "profile: ship+drain+barrier_wait share of worker time: {:.1}%",
        share(sync_overhead_nanos(agg), grand) * 100.0
    );
}

/// Writes the folded-stack profile to `--profile` (stdout for `-`).
fn write_profile(path: &str, profiler: &Profiler) -> Result<(), ExitCode> {
    let folded = profiler.folded();
    if path == "-" {
        print!("{folded}");
        return Ok(());
    }
    std::fs::write(path, folded).map_err(|e| {
        eprintln!("ccr: cannot write {path}: {e}");
        ExitCode::FAILURE
    })
}

/// Renders one status snapshot as a watch line.
fn render_status(st: &RunStatus) -> String {
    let eta = match st.eta_ms {
        Some(ms) => format!("{:.1}s", ms as f64 / 1e3),
        None => "-".to_string(),
    };
    let depth = st.depth.map(|d| d.to_string()).unwrap_or_else(|| "-".to_string());
    let spans = if st.spans.is_empty() {
        String::new()
    } else {
        let total: f64 = st.spans.iter().map(|(_, s)| s).sum();
        let cells: Vec<String> = st
            .spans
            .iter()
            .map(|(name, secs)| format!("{name} {:.0}%", secs * 100.0 / total.max(1e-12)))
            .collect();
        format!(" | {}", cells.join(" "))
    };
    format!(
        "[{:>7} ms] {} {}: {} states, {} transitions, frontier {}, depth {}, \
         {:.0} st/s, {} KB, eta {}{}{}",
        st.elapsed_ms,
        st.spec,
        st.phase,
        st.states,
        st.transitions,
        st.frontier,
        depth,
        st.states_per_sec,
        st.store_bytes / 1024,
        eta,
        spans,
        if st.finished {
            format!(" | finished: {}", st.outcome.as_deref().unwrap_or("?"))
        } else {
            String::new()
        }
    )
}

/// Age of a file's last modification, when the filesystem can tell.
fn mtime_age(path: &str) -> Option<Duration> {
    std::fs::metadata(path).ok()?.modified().ok()?.elapsed().ok()
}

/// Whether the process that wrote a status snapshot is still alive
/// (`/proc/<pid>` present). `None` when the snapshot carries no pid or
/// procfs is unavailable — the caller falls back to mtime staleness.
fn writer_alive(st: &RunStatus) -> Option<bool> {
    let pid = st.pid?;
    let proc_dir = format!("/proc/{pid}");
    Path::new(&proc_dir).exists().then_some(true).or(Some(false))
}

/// `ccr watch <status-file> [--once] [--interval SECS] [--timeout SECS]
/// [--stale-timeout SECS]`: tails a live status file (atomic-rename
/// JSON written by `--status`/`--run-dir`), printing a line — with a
/// sparkline of the recent exploration-rate history — whenever the
/// snapshot advances, until the run reports `finished` (or immediately
/// with `--once`). A watcher started before the run is a normal race,
/// not an error: the file is polled until the first snapshot appears,
/// and only a `--timeout` (default 30 s) with no snapshot at all fails
/// the command.
///
/// A run that *died* — snapshot not `finished`, `seq` frozen, and the
/// writing pid gone (or, lacking a pid, the file mtime stale) beyond
/// `--stale-timeout` (default 30 s) — fails the watch with a diagnostic
/// instead of polling forever.
fn cmd_watch(argv: &[String]) -> ExitCode {
    let mut path: Option<&str> = None;
    let mut once = false;
    let mut interval = Duration::from_millis(500);
    let mut timeout = Duration::from_secs(30);
    let mut stale_timeout = Duration::from_secs(30);
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--once" => once = true,
            "--interval" => {
                let Some(secs) = it.next().and_then(|s| s.parse::<f64>().ok()) else {
                    return usage();
                };
                interval = Duration::from_secs_f64(secs.max(0.01));
            }
            "--timeout" => {
                let Some(secs) = it.next().and_then(|s| s.parse::<f64>().ok()) else {
                    return usage();
                };
                timeout = Duration::from_secs_f64(secs.max(0.0));
            }
            "--stale-timeout" => {
                let Some(secs) = it.next().and_then(|s| s.parse::<f64>().ok()) else {
                    return usage();
                };
                stale_timeout = Duration::from_secs_f64(secs.max(0.0));
            }
            _ if path.is_none() && !a.starts_with("--") => path = Some(a),
            _ => return usage(),
        }
    }
    let Some(path) = path else {
        return usage();
    };
    let started = Instant::now();
    let mut seen_any = false;
    let mut last_seq = 0u64;
    let mut last_advance = Instant::now();
    let mut rate_history: Vec<f64> = Vec::new();
    loop {
        match RunStatus::read(Path::new(path)) {
            Ok(st) => {
                seen_any = true;
                if st.seq != last_seq {
                    rate_history.push(st.states_per_sec);
                    let spark = sparkline(&rate_history, 24);
                    if spark.chars().count() > 1 {
                        println!("{}  {spark}", render_status(&st));
                    } else {
                        println!("{}", render_status(&st));
                    }
                    last_seq = st.seq;
                    last_advance = Instant::now();
                }
                if once || st.finished {
                    return ExitCode::SUCCESS;
                }
                // Dead-run detection: the snapshot stopped advancing and
                // the writer is provably gone (pid vanished) or silent
                // past the staleness threshold. A *stalled but alive*
                // run keeps bumping `seq` (status writes ride the
                // heartbeat, not forward progress), so this fires only
                // when the process truly died between snapshots.
                if last_advance.elapsed() > stale_timeout {
                    let dead = match writer_alive(&st) {
                        Some(alive) => !alive,
                        None => mtime_age(path).is_some_and(|age| age > stale_timeout),
                    };
                    if dead {
                        eprintln!(
                            "ccr: watch {path}: run died without finished snapshot \
                             (seq {} frozen for {:.0}s{})",
                            st.seq,
                            last_advance.elapsed().as_secs_f64(),
                            match st.pid {
                                Some(pid) => format!(", pid {pid} gone"),
                                None => ", file stale".to_string(),
                            }
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
            // Absent, mid-rename, or mid-write snapshots are all normal
            // while the watched run is alive; the timeout only gates the
            // wait for the *first* snapshot.
            Err(e) => {
                if !seen_any && started.elapsed() > timeout {
                    eprintln!(
                        "ccr: watch {path}: no status snapshot after {:.0}s: {e}",
                        timeout.as_secs_f64()
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
        std::thread::sleep(interval);
    }
}

/// Reads and jsonval-validates one run-dir JSON artifact; `None` when
/// the file is absent, an error string when present but invalid.
fn read_artifact(dir: &str, name: &str) -> Result<Option<(String, Json)>, String> {
    let path = format!("{dir}/{name}");
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(_) => return Ok(None),
    };
    let json = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok(Some((text.trim_end().to_string(), json)))
}

/// `ccr report <run-dir> [--json]`: merges a run's artifacts
/// (verify.json, metrics.json, profile.folded, status.json,
/// trace.jsonl, timeline.jsonl — whichever exist) into one
/// self-contained report. Every JSON artifact is validated with the
/// shipped `jsonval` parser, as is the emitted JSON document itself.
fn cmd_report(argv: &[String]) -> ExitCode {
    let mut dir: Option<&str> = None;
    let mut json_out = false;
    for a in argv {
        match a.as_str() {
            "--json" => json_out = true,
            _ if dir.is_none() && !a.starts_with("--") => dir = Some(a),
            _ => return usage(),
        }
    }
    let Some(dir) = dir else {
        return usage();
    };

    let verify = read_artifact(dir, "verify.json");
    let metrics = read_artifact(dir, "metrics.json");
    let status = read_artifact(dir, "status.json");
    let (verify, metrics, status) = match (verify, metrics, status) {
        (Ok(v), Ok(m), Ok(s)) => (v, m, s),
        (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => {
            eprintln!("ccr: report: {e}");
            return ExitCode::FAILURE;
        }
    };
    let profile = match std::fs::read_to_string(format!("{dir}/profile.folded")) {
        Ok(text) => match parse_folded(&text).and_then(|e| ProfileAgg::from_folded(&e)) {
            Ok(agg) => Some(agg),
            Err(e) => {
                eprintln!("ccr: report: profile.folded: {e}");
                return ExitCode::FAILURE;
            }
        },
        Err(_) => None,
    };
    // Trace summary: events per variant (externally tagged JSONL).
    let mut trace_counts: Vec<(String, u64)> = Vec::new();
    if let Ok(text) = std::fs::read_to_string(format!("{dir}/trace.jsonl")) {
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let ev = match Json::parse(line) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("ccr: report: trace.jsonl line {}: {e}", i + 1);
                    return ExitCode::FAILURE;
                }
            };
            let variant = ev
                .as_object()
                .and_then(|o| o.first())
                .map(|(k, _)| k.clone())
                .unwrap_or_else(|| "?".to_string());
            match trace_counts.iter_mut().find(|(k, _)| *k == variant) {
                Some((_, n)) => *n += 1,
                None => trace_counts.push((variant, 1)),
            }
        }
    }
    // Flight-recorder timeline, when the run wrote one.
    let timeline = match std::fs::read_to_string(format!("{dir}/timeline.jsonl")) {
        Ok(text) => match Timeline::parse(&text).and_then(|t| {
            t.validate()?;
            Ok(t)
        }) {
            Ok(t) => Some(t.analyze()),
            Err(e) => {
                eprintln!("ccr: report: timeline.jsonl: {e}");
                return ExitCode::FAILURE;
            }
        },
        Err(_) => None,
    };
    if verify.is_none() && metrics.is_none() && status.is_none() && profile.is_none() {
        eprintln!("ccr: report: no run artifacts found under {dir}");
        return ExitCode::FAILURE;
    }

    if json_out {
        let mut s = Serializer::new();
        {
            let mut m = s.begin_map();
            m.entry("run_dir", dir);
            for (key, artifact) in [("verify", &verify), ("metrics", &metrics), ("status", &status)]
            {
                match artifact {
                    Some((raw, _)) => m.entry_with(key, |ser| ser.serialize_raw(raw)),
                    None => m.entry(key, &None::<u32>),
                }
            }
            match &profile {
                Some(agg) => profile_entry(&mut m, agg),
                None => m.entry("profile", &None::<u32>),
            }
            m.entry_with("trace_events", |ser| {
                let mut t = ser.begin_map();
                for (k, n) in &trace_counts {
                    t.entry(k, n);
                }
                t.end();
            });
            match &timeline {
                Some(an) => m.entry_with("timeline", |ser| an.serialize_into(ser)),
                None => m.entry("timeline", &None::<u32>),
            }
            m.end();
        }
        let doc = s.into_string();
        if let Err(e) = Json::parse(&doc) {
            eprintln!("ccr: report: emitted JSON failed validation: {e}");
            return ExitCode::FAILURE;
        }
        println!("{doc}");
        return ExitCode::SUCCESS;
    }

    // Markdown rendering.
    let spec = status
        .as_ref()
        .map(|(_, j)| j.get("spec").and_then(Json::as_str).unwrap_or("?").to_string())
        .or_else(|| {
            verify
                .as_ref()
                .map(|(_, j)| j.get("spec").and_then(Json::as_str).unwrap_or("?").to_string())
        })
        .unwrap_or_else(|| "?".to_string());
    println!("# Run report: {spec}");
    println!("\nArtifacts: `{dir}`");
    if let Some((_, v)) = &verify {
        println!("\n## Verification\n");
        let b = |k: &str| v.get(k).and_then(Json::as_bool);
        if let Some(holds) = b("holds") {
            println!("- holds: **{holds}**");
        }
        for key in ["rendezvous", "asynchronous"] {
            if let Some(r) = v.get(key).filter(|r| !matches!(r, Json::Null)) {
                let states = r.get("states").and_then(Json::as_u64).unwrap_or(0);
                let outcome = r
                    .path("outcome.outcome")
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .or_else(|| r.get("outcome").and_then(Json::as_str).map(str::to_string))
                    .unwrap_or_else(|| "?".to_string());
                println!("- {key}: {states} states, {outcome}");
            }
        }
    }
    if let Some((raw, _)) = &status {
        println!("\n## Final status\n");
        match RunStatus::parse(raw) {
            Ok(st) => println!("```\n{}\n```", render_status(&st)),
            Err(e) => {
                eprintln!("ccr: report: status.json: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some((_, mjson)) = &metrics {
        if let Some(phases) = mjson.get("phases").and_then(Json::as_object) {
            println!("\n## Phases\n");
            println!("| phase | calls | seconds |");
            println!("|---|---|---|");
            for (name, v) in phases {
                let calls = v.get("calls").and_then(Json::as_u64).unwrap_or(0);
                if let Some(nanos) = v.get("nanos").and_then(Json::as_u64) {
                    println!("| {name} | {calls} | {:.4} |", nanos as f64 / 1e9);
                }
            }
        }
    }
    if let Some(agg) = &profile {
        println!("\n## Profile\n");
        let grand = agg.total_nanos();
        println!("| worker | secs | breakdown |");
        println!("|---|---|---|");
        for w in &agg.workers {
            let total = w.total_nanos().max(1);
            let cells: Vec<String> = SpanKind::ALL
                .iter()
                .filter(|k| w.kind(**k).nanos > 0)
                .map(|k| {
                    format!("{} {:.1}%", k.name(), w.kind(*k).nanos as f64 * 100.0 / total as f64)
                })
                .collect();
            println!("| {} | {:.4} | {} |", w.worker, total as f64 / 1e9, cells.join(", "));
        }
        println!(
            "\nShip + drain + barrier-wait share of worker time: \
             **{:.1}%**",
            share(sync_overhead_nanos(agg), grand) * 100.0
        );
    }
    if let Some(an) = &timeline {
        println!("\n## Timeline\n");
        render_analysis(an);
    }
    if !trace_counts.is_empty() {
        println!("\n## Trace\n");
        for (k, n) in &trace_counts {
            println!("- {k}: {n}");
        }
    }
    ExitCode::SUCCESS
}

/// Human rendering of a timeline analysis: per-phase rate statistics
/// with sparklines, detected rate shifts, and stall diagnostics.
/// Shared by `ccr timeline` and the `## Timeline` report section.
fn render_analysis(an: &ccr_metrics::timeseries::Analysis) {
    println!(
        "{} samples over {:.1}s at {}ms interval ({})",
        an.samples,
        an.duration_ms as f64 / 1e3,
        an.interval_ms,
        an.outcome.as_deref().unwrap_or("no end record")
    );
    for p in &an.phases {
        let spark = sparkline(&p.rates, 32);
        println!(
            "- {}: {} samples, {} states; {:.0}/s mean, {:.0}/s peak  {}",
            p.name, p.samples, p.states, p.mean_states_per_sec, p.peak_states_per_sec, spark
        );
        for sh in &p.shifts {
            println!(
                "  - rate shift at {:.1}s: {:.0}/s -> {:.0}/s",
                sh.t_ms as f64 / 1e3,
                sh.before,
                sh.after
            );
        }
    }
    for st in &an.stalls {
        println!(
            "- stall at {:.1}s: no progress for {} intervals at {} states \
             (frontier {}, queues {:?})",
            st.t_ms as f64 / 1e3,
            st.intervals,
            st.states,
            st.frontier,
            st.queues
        );
        for (w, span, s) in &st.workers {
            println!("  - worker {w}: {span} {:.0}%", s * 100.0);
        }
    }
    if let Some(rss) = an.peak_rss_bytes {
        println!("- peak rss: {:.1} MiB", rss as f64 / (1024.0 * 1024.0));
    }
    if an.spill_bytes > 0 {
        println!(
            "- spill: {:.1} MiB appended, {:.1} MiB compacted",
            an.spill_bytes as f64 / (1024.0 * 1024.0),
            an.compacted_bytes as f64 / (1024.0 * 1024.0)
        );
    }
}

/// `ccr timeline <run-dir|timeline.jsonl> [--json]`: parses and
/// validates a flight-recorder timeline, runs phase/rate analysis,
/// writes the machine summary next to the source as `timeline.json`
/// (self-validated with the shipped `jsonval` parser), and prints the
/// human summary (or the JSON document with `--json`).
fn cmd_timeline(argv: &[String]) -> ExitCode {
    let mut target: Option<&str> = None;
    let mut json_out = false;
    for a in argv {
        match a.as_str() {
            "--json" => json_out = true,
            _ if target.is_none() && !a.starts_with("--") => target = Some(a),
            _ => return usage(),
        }
    }
    let Some(target) = target else {
        return usage();
    };
    let path = if Path::new(target).is_dir() {
        PathBuf::from(target).join("timeline.jsonl")
    } else {
        PathBuf::from(target)
    };
    let timeline = match Timeline::read(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("ccr: timeline: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = timeline.validate() {
        eprintln!("ccr: timeline: {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    let analysis = timeline.analyze();
    let doc = analysis.to_json();
    if let Err(e) = Json::parse(&doc) {
        eprintln!("ccr: timeline: emitted JSON failed validation: {e}");
        return ExitCode::FAILURE;
    }
    let out = path.with_file_name("timeline.json");
    if let Err(e) = std::fs::write(&out, format!("{doc}\n")) {
        eprintln!("ccr: timeline: write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    if json_out {
        println!("{doc}");
        return ExitCode::SUCCESS;
    }
    println!("# Timeline: {}", analysis.spec);
    println!();
    render_analysis(&analysis);
    println!("\nSummary written to {}", out.display());
    ExitCode::SUCCESS
}

fn usage_fuzz() -> ExitCode {
    eprintln!(
        "usage: ccr fuzz [--seed S] [--count N] [-n N] [--budget STATES] \
         [--fault-budget F] [--shrink] [--corpus DIR] [--inject-broken] \
         [--json] [--metrics PATH|-] [--metrics-format json|prometheus]"
    );
    ExitCode::from(2)
}

/// `ccr fuzz`: generate `--count` specs from the seeded zoo stream and run
/// each through the differential derivation pipeline (round-trip → refine →
/// Equation 1 → serial/2t/4t/symmetry cross-check → fault closure). Exits
/// nonzero iff any spec fails; `--shrink` minimizes failures and writes
/// them as `.ccp`. Fully deterministic for a given seed and config.
fn cmd_fuzz(argv: &[String]) -> ExitCode {
    let mut seed: u64 = 1;
    let mut count: u64 = 50;
    let mut n: u32 = 2;
    let mut budget: usize = 20_000;
    let mut fault_budget: u32 = 1;
    let mut shrink = false;
    let mut corpus: Option<PathBuf> = None;
    let mut inject = false;
    let mut json = false;
    let mut metrics: Option<String> = None;
    let mut metrics_format = MetricsFormat::Json;
    let mut i = 0;
    while i < argv.len() {
        let value = |i: &mut usize| -> Option<String> {
            *i += 1;
            argv.get(*i).cloned()
        };
        match argv[i].as_str() {
            "--seed" => match value(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage_fuzz(),
            },
            "--count" => match value(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => count = v,
                None => return usage_fuzz(),
            },
            "-n" => match value(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => n = v,
                None => return usage_fuzz(),
            },
            "--budget" => match value(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => budget = v,
                None => return usage_fuzz(),
            },
            "--fault-budget" => match value(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => fault_budget = v,
                None => return usage_fuzz(),
            },
            "--shrink" => shrink = true,
            "--corpus" => match value(&mut i) {
                Some(v) => corpus = Some(PathBuf::from(v)),
                None => return usage_fuzz(),
            },
            "--inject-broken" => inject = true,
            "--json" => json = true,
            "--metrics" => match value(&mut i) {
                Some(v) => metrics = Some(v),
                None => return usage_fuzz(),
            },
            "--metrics-format" => match value(&mut i).as_deref() {
                Some("json") => metrics_format = MetricsFormat::Json,
                Some("prometheus") => metrics_format = MetricsFormat::Prometheus,
                _ => return usage_fuzz(),
            },
            _ => return usage_fuzz(),
        }
        i += 1;
    }
    let cfg =
        ccr_mc::FuzzConfig { n, budget_states: budget, threads: vec![2, 4], fault_budget, inject };
    if let Some(dir) = &corpus {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("ccr: fuzz: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    let registry = if metrics.is_some() { Registry::new() } else { Registry::disabled() };
    let mut rows: Vec<(u64, ccr_mc::SpecVerdict)> = Vec::new();
    let mut shrunk: Vec<(String, String, usize)> = Vec::new();
    let mut failed = 0u64;
    let mut permutable = 0u64;
    let bool_cell = |b: Option<bool>| match b {
        Some(true) => "yes",
        Some(false) => "no",
        None => "-",
    };
    if !json {
        println!(
            "{:>5}  {:<14} {:>4} {:>8} {:>8} {:>9}  {:<11} {:>5} {:>5}  verdict",
            "idx", "name", "sym", "rv", "async", "trans", "outcome", "prog", "fault"
        );
    }
    for idx in 0..count {
        let (shape, verdict) = ccr_mc::fuzz_one(seed, idx, &cfg);
        if let (Some(dir), Ok(spec)) = (&corpus, shape.build()) {
            let path = dir.join(format!("{}.ccp", verdict.name));
            if let Err(e) = std::fs::write(&path, to_text(&spec)) {
                eprintln!("ccr: fuzz: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
        if verdict.permutable {
            permutable += 1;
        }
        registry
            .counter("fuzz_rv_states_total", "Rendezvous states explored across the fuzz run")
            .add(verdict.rv_states as u64);
        registry
            .counter("fuzz_async_states_total", "Asynchronous states explored across the fuzz run")
            .add(verdict.async_states as u64);
        if !verdict.passed() {
            failed += 1;
            let kind = verdict.failure.as_ref().map(|f| f.kind()).unwrap_or("unknown");
            registry.counter(&format!("fuzz_fail_{kind}_total"), "Fuzz failures by kind").inc();
            if shrink {
                let sr = ccr_mc::shrink_failing(&shape, &cfg, 256);
                registry
                    .counter("fuzz_shrink_steps_total", "Accepted shrink steps across the run")
                    .add(sr.steps as u64);
                if let Ok(spec) = sr.shape.build() {
                    let text = to_text(&spec);
                    let fname = format!("{}.fail.ccp", verdict.name);
                    if let Some(dir) = &corpus {
                        let path = dir.join(&fname);
                        if let Err(e) = std::fs::write(&path, &text) {
                            eprintln!("ccr: fuzz: cannot write {}: {e}", path.display());
                            return ExitCode::FAILURE;
                        }
                        shrunk.push((fname, path.display().to_string(), sr.steps));
                    } else {
                        if !json {
                            eprintln!(
                                "shrunk counterexample for {} ({} steps):\n{text}",
                                verdict.name, sr.steps
                            );
                        }
                        shrunk.push((fname, "-".to_string(), sr.steps));
                    }
                }
            }
        }
        if !json {
            let (verdict_cell, detail) = match &verdict.failure {
                None => ("pass".to_string(), None),
                Some(f) => (format!("FAIL[{}]", f.kind()), Some(f.to_string())),
            };
            println!(
                "{:>5}  {:<14} {:>4} {:>8} {:>8} {:>9}  {:<11} {:>5} {:>5}  {}",
                idx,
                verdict.name,
                if verdict.permutable { "yes" } else { "no" },
                verdict.rv_states,
                verdict.async_states,
                verdict.async_transitions,
                verdict.outcome.as_ref().map(|o| o.name()).unwrap_or("-"),
                bool_cell(verdict.progress_holds),
                bool_cell(verdict.fault_holds),
                verdict_cell,
            );
            if let Some(d) = detail {
                println!("       ^ {d}");
            }
        }
        rows.push((idx, verdict));
    }
    registry.counter("fuzz_specs_total", "Specs generated and checked").add(count);
    registry.counter("fuzz_failed_total", "Specs that failed the pipeline").add(failed);
    registry
        .counter("fuzz_permutable_total", "Specs that passed the scalarset symmetry check")
        .add(permutable);
    registry
        .counter("fuzz_shrunk_specs_total", "Failing specs minimized by the shrinker")
        .add(shrunk.len() as u64);
    if json {
        let mut s = Serializer::new();
        {
            let mut m = s.begin_map();
            m.entry("seed", &seed);
            m.entry("count", &count);
            m.entry("n", &n);
            m.entry("budget_states", &budget);
            m.entry("fault_budget", &fault_budget);
            m.entry("inject_broken", &inject);
            m.entry("failed", &failed);
            m.entry("permutable", &permutable);
            m.entry_with("specs", |ser| {
                let mut seq = ser.begin_seq();
                for (idx, v) in &rows {
                    seq.elem_with(|ser| {
                        let mut sm = ser.begin_map();
                        sm.entry("index", idx);
                        sm.entry("name", v.name.as_str());
                        sm.entry("permutable", &v.permutable);
                        sm.entry("rv_states", &v.rv_states);
                        sm.entry("async_states", &v.async_states);
                        sm.entry("async_transitions", &v.async_transitions);
                        match &v.outcome {
                            Some(o) => sm.entry("outcome", o.name()),
                            None => sm.entry_with("outcome", |s| s.serialize_null()),
                        }
                        match v.progress_holds {
                            Some(b) => sm.entry("progress_holds", &b),
                            None => sm.entry_with("progress_holds", |s| s.serialize_null()),
                        }
                        match v.fault_holds {
                            Some(b) => sm.entry("fault_holds", &b),
                            None => sm.entry_with("fault_holds", |s| s.serialize_null()),
                        }
                        match &v.failure {
                            Some(f) => sm.entry("failure", &f.to_string()),
                            None => sm.entry_with("failure", |s| s.serialize_null()),
                        }
                        sm.end();
                    });
                }
                seq.end();
            });
            m.entry_with("shrunk", |ser| {
                let mut seq = ser.begin_seq();
                for (name, path, steps) in &shrunk {
                    seq.elem_with(|ser| {
                        let mut sm = ser.begin_map();
                        sm.entry("name", name.as_str());
                        sm.entry("path", path.as_str());
                        sm.entry("steps", steps);
                        sm.end();
                    });
                }
                seq.end();
            });
            m.end();
        }
        println!("{}", s.into_string());
    } else {
        println!(
            "\n{} specs: {} passed, {failed} failed, {permutable} permutable (seed {seed}, n {n}, budget {budget})",
            count,
            count - failed,
        );
        for (name, path, steps) in &shrunk {
            println!("  shrunk {name} ({steps} steps) -> {path}");
        }
    }
    if let Some(path) = &metrics {
        let snap = registry.snapshot();
        let text = match metrics_format {
            MetricsFormat::Json => snap.to_json(),
            MetricsFormat::Prometheus => snap.to_prometheus(),
        };
        if path == "-" {
            println!("{text}");
        } else if let Err(e) = std::fs::write(path, format!("{text}\n")) {
            eprintln!("ccr: fuzz: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    // `ccr bench diff` takes no spec file and none of the pipeline
    // flags; dispatch before the regular argument parse.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("bench") {
        return ccr_bench::diff::cli(&argv[1..]);
    }
    // Same for `watch` and `report`: they operate on run artifacts, not
    // on a spec file.
    if argv.first().map(String::as_str) == Some("watch") {
        return cmd_watch(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("report") {
        return cmd_report(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("timeline") {
        return cmd_timeline(&argv[1..]);
    }
    // `fuzz` generates its own specs; no spec positional either.
    if argv.first().map(String::as_str) == Some("fuzz") {
        return cmd_fuzz(&argv[1..]);
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    if let Some(dir) = &args.run_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("ccr: cannot create {dir}: {e}");
            return ExitCode::FAILURE;
        }
    }
    // One registry for the whole invocation: real when `--metrics` asked
    // for a snapshot, null (every record a no-op) otherwise.
    let registry = if args.metrics.is_some() { Registry::new() } else { Registry::disabled() };
    let parse_phase = registry.phase("parse");
    let src = match std::fs::read_to_string(&args.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ccr: cannot read {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    let spec = match parse_validated(&src) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ccr: {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    drop(parse_phase);
    let opts =
        RefineOptions { reqrep: if args.no_opt { ReqRepMode::Off } else { ReqRepMode::Auto } };

    match args.cmd.as_str() {
        "fmt" => {
            print!("{}", to_text(&spec));
            ExitCode::SUCCESS
        }
        "check" => {
            // parse_validated already ran the checks.
            println!(
                "ok: {} ({} home states, {} remote states, {} messages)",
                spec.name,
                spec.home.states.len(),
                spec.remote.states.len(),
                spec.msgs.len()
            );
            ExitCode::SUCCESS
        }
        "refine" => {
            let r = match refine(&spec, &opts) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("ccr: refinement failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("protocol {}", spec.name);
            if r.pairs.is_empty() {
                println!("  request/reply pairs: none");
            } else {
                for p in &r.pairs {
                    println!(
                        "  pair: {} answered by {} ({:?})",
                        spec.msg_name(p.req),
                        spec.msg_name(p.repl),
                        p.direction
                    );
                }
            }
            println!(
                "  home automaton: {} states ({} transient), {} edges",
                r.home.states.len(),
                r.home.transient_count(),
                r.home.edges.len()
            );
            println!(
                "  remote automaton: {} states ({} transient), {} edges",
                r.remote.states.len(),
                r.remote.transient_count(),
                r.remote.edges.len()
            );
            println!(
                "  static cost of one round of every rendezvous: {} messages",
                r.total_static_cost()
            );
            ExitCode::SUCCESS
        }
        "dot" => {
            if args.refined {
                match refine(&spec, &opts) {
                    Ok(r) => {
                        print!(
                            "{}",
                            dot_automaton(&r.home, &format!("{} home (refined)", spec.name))
                        );
                        println!();
                        print!(
                            "{}",
                            dot_automaton(&r.remote, &format!("{} remote (refined)", spec.name))
                        );
                    }
                    Err(e) => {
                        eprintln!("ccr: refinement failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                print!("{}", dot_spec(&spec));
            }
            ExitCode::SUCCESS
        }
        "verify" => {
            let budget = Budget::states(args.budget);
            let n = args.n;
            let human = !args.json;
            let fault_rates = match &args.faults {
                Some(spec) => match parse_fault_spec(spec) {
                    Ok(r) => Some(r),
                    Err(e) => {
                        eprintln!("ccr: bad --faults spec: {e}");
                        return usage();
                    }
                },
                None => None,
            };
            let refined = {
                let _p = registry.phase("refine");
                match refine(&spec, &opts) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("ccr: refinement failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            };
            let mut file = match file_sink(&args.trace) {
                Ok(s) => s,
                Err(code) => return code,
            };
            let mut beats: Box<dyn TraceSink> =
                if args.progress { Box::new(ProgressSink) } else { Box::new(NullSink) };
            let mut tee = TeeSink(&mut *file, &mut *beats);
            let run_started = Instant::now();
            let profiler =
                if args.profile.is_some() { Profiler::new() } else { Profiler::disabled() };
            let status_writer: Option<StatusWriter> = match status_writer_for(&args) {
                Ok(w) => w,
                Err(code) => return code,
            };
            let timeline = match recorder_for(&args) {
                Ok(r) => r,
                Err(code) => return code,
            };

            let threads = args.engine_threads();
            // `auto` reduces unless a fault flag is present: the fault
            // phases explore per-link fault ledgers that break remote
            // interchangeability (docs/symmetry.md), and mixing reduced
            // clean phases with concrete fault phases would make the two
            // state counts incomparable. Specs that fail the scalarset
            // check (order-sensitive primitives like `first`) are never
            // reduced, not even under an explicit `on` — it would be
            // unsound.
            let faulty = args.faults.is_some() || args.fault_budget.is_some();
            let permutable = ccr_mc::spec_permutable(&spec);
            let reduce = permutable
                && match args.symmetry {
                    Symmetry::On => true,
                    Symmetry::Off => false,
                    Symmetry::Auto => !faulty,
                };
            if human {
                let asked = match args.symmetry {
                    Symmetry::On => "on",
                    Symmetry::Off => "off",
                    Symmetry::Auto => "auto",
                };
                if args.symmetry != Symmetry::Off && !permutable {
                    println!(
                        "symmetry: {asked} -> off (spec uses order-sensitive \
                         primitives; remotes are not interchangeable, see \
                         docs/symmetry.md)"
                    );
                } else if args.symmetry == Symmetry::Auto && faulty {
                    println!(
                        "symmetry: auto -> off (fault flags present; per-link faults \
                         break remote interchangeability, see docs/symmetry.md)"
                    );
                } else {
                    println!("symmetry: {}", if reduce { "on" } else { "off" });
                }
            }
            // Persistence (tentpole): with `--spill-dir`/`--resume` the
            // two reachability sweeps checkpoint into per-phase
            // subdirectories; `meta.json` records the engine shape for
            // `--resume` to replay (see docs/persistence.md).
            let popts = PersistOpts {
                interval: args.checkpoint_interval,
                evict_at: args.spill_bytes,
                resume: args.resume,
                crash: CrashSwitch::after(args.crash_after),
            };
            let spill_root: Option<PathBuf> = args.spill_dir.as_ref().map(PathBuf::from);
            if let Some(root) = &spill_root {
                if let Err(e) = std::fs::create_dir_all(root) {
                    eprintln!("ccr: cannot create {}: {e}", root.display());
                    return ExitCode::FAILURE;
                }
                if let Err(code) = write_meta(root, &args, reduce) {
                    return code;
                }
            }
            let rv = RendezvousSystem::new(&spec, n);
            // `--async` skips the rendezvous level (and the checks that
            // need it): the async exploration alone, for profiling and
            // benchmarking the parallel engine.
            let r: Option<TracedReport> = if args.async_only {
                None
            } else {
                let rr = {
                    let _p = registry.phase("explore/rendezvous");
                    let mut obs = observer(
                        &mut tee,
                        &registry,
                        &profiler,
                        &args,
                        &status_writer,
                        &timeline,
                        "explore/rendezvous",
                    );
                    match &spill_root {
                        Some(root) => match explore_cli_sym_persist(
                            &rv,
                            reduce,
                            &budget,
                            threads,
                            &mut obs,
                            &registry,
                            &root.join("rendezvous"),
                            &popts,
                        ) {
                            Ok((rep, restored)) => {
                                if restored && human {
                                    println!("rendezvous level: restored from finished checkpoint");
                                }
                                rep
                            }
                            Err(e) => {
                                eprintln!("ccr: {e}");
                                return ExitCode::FAILURE;
                            }
                        },
                        None => explore_cli_sym(
                            &rv,
                            reduce,
                            &budget,
                            threads,
                            args.inject_stall_ms,
                            &mut obs,
                            &registry,
                        ),
                    }
                };
                if let ccr_mc::Outcome::PersistFailure(msg) = &rr.outcome {
                    eprintln!("ccr: persistence failure: {msg}");
                }
                if human {
                    println!("rendezvous level  (n={n}): {} states, {:?}", rr.states, rr.outcome);
                    if rr.trail.is_some() {
                        println!("{}", rr.trail_text());
                    }
                }
                Some(rr)
            };
            let r_ok = r.as_ref().map(|x| x.outcome.is_complete()).unwrap_or(true);

            let asys = AsyncSystem::new(&refined, n, AsyncConfig::default());
            let mut a = None;
            let mut sim = None;
            let mut prog = None;
            if r_ok {
                let ar = {
                    let _p = registry.phase("explore/async");
                    let mut obs = observer(
                        &mut tee,
                        &registry,
                        &profiler,
                        &args,
                        &status_writer,
                        &timeline,
                        "explore/async",
                    );
                    match &spill_root {
                        Some(root) => match explore_cli_sym_persist(
                            &asys,
                            reduce,
                            &budget,
                            threads,
                            &mut obs,
                            &registry,
                            &root.join("async"),
                            &popts,
                        ) {
                            Ok((rep, restored)) => {
                                if restored && human {
                                    println!(
                                        "asynchronous level: restored from finished checkpoint"
                                    );
                                }
                                rep
                            }
                            Err(e) => {
                                eprintln!("ccr: {e}");
                                return ExitCode::FAILURE;
                            }
                        },
                        None => explore_cli_sym(
                            &asys,
                            reduce,
                            &budget,
                            threads,
                            args.inject_stall_ms,
                            &mut obs,
                            &registry,
                        ),
                    }
                };
                if let ccr_mc::Outcome::PersistFailure(msg) = &ar.outcome {
                    eprintln!("ccr: persistence failure: {msg}");
                }
                if human {
                    println!("asynchronous level (n={n}): {} states, {:?}", ar.states, ar.outcome);
                    if ar.trail.is_some() {
                        println!("{}", ar.trail_text());
                    }
                }
                let a_ok = ar.outcome.is_complete();
                a = Some(ar);
                if a_ok && !args.async_only {
                    let s = {
                        let _p = registry.phase("check/equation1");
                        check_simulation(&asys, &rv, &budget)
                    };
                    if human {
                        println!(
                            "Equation 1: {} ({} transitions, {} stutters, {} mapped)",
                            if s.holds() { "holds" } else { "VIOLATED" },
                            s.transitions_checked,
                            s.stutters,
                            s.mapped_steps
                        );
                        if let Some(v) = &s.violation {
                            println!("{v}");
                        }
                    }
                    let s_ok = s.holds();
                    sim = Some(s);
                    if s_ok {
                        let p = {
                            let _p = registry.phase("check/progress");
                            let mut obs = observer(
                                &mut tee,
                                &registry,
                                &profiler,
                                &args,
                                &status_writer,
                                &timeline,
                                "check/progress",
                            );
                            progress_cli_sym(&asys, reduce, &budget, threads, &mut obs, &registry)
                        };
                        if human {
                            println!(
                                "forward progress: {} ({} states, {} livelocked, {} deadlocked)",
                                if p.holds() { "holds" } else { "VIOLATED" },
                                p.states,
                                p.livelocked_states,
                                p.deadlocked_states
                            );
                        }
                        prog = Some(p);
                    }
                }
            }
            let clean_ok = if args.async_only {
                r_ok && a.as_ref().map(|x| x.outcome.is_complete()).unwrap_or(false)
            } else {
                r_ok && a.as_ref().map(|x| x.outcome.is_complete()).unwrap_or(false)
                    && sim.as_ref().map(|x| x.holds()).unwrap_or(false)
                    && prog.as_ref().map(|x| x.holds()).unwrap_or(false)
            };

            // Fault phases run only once the clean pipeline has passed:
            // fault tolerance of a protocol that is already broken is
            // meaningless and would only bury the primary counterexample.
            // `--async` skips them with the rest of the checks.
            let mut fclosure = None;
            if clean_ok && !args.async_only {
                if let Some(f) = args.fault_budget {
                    let fc = {
                        let _p = registry.phase("check/fault-closure");
                        let mut obs = observer(
                            &mut tee,
                            &registry,
                            &profiler,
                            &args,
                            &status_writer,
                            &timeline,
                            "check/fault-closure",
                        );
                        if threads > 0 {
                            check_fault_closure_parallel_observed(
                                &asys,
                                f,
                                &budget,
                                |_| None,
                                &ParallelConfig::threads(threads),
                                &mut obs,
                            )
                        } else {
                            check_fault_closure_observed(&asys, f, &budget, |_| None, &mut obs)
                        }
                    };
                    if human {
                        println!(
                            "fault closure (budget={f}): {} ({} states, {} livelocked, {} deadlocked)",
                            if fc.holds() { "holds" } else { "VIOLATED" },
                            fc.explore.states,
                            fc.progress.livelocked_states,
                            fc.progress.deadlocked_states
                        );
                        if fc.explore.trail.is_some() {
                            println!("{}", fc.explore.trail_text());
                        }
                    }
                    fclosure = Some(fc);
                }
            }
            let fclosure_ok = fclosure.as_ref().map(|x| x.holds()).unwrap_or(clean_ok);
            let mut fwalk = None;
            if clean_ok && fclosure_ok && !args.async_only {
                if let (Some(rates), Some(spec_text)) = (fault_rates, &args.faults) {
                    let w = {
                        let _p = registry.phase("check/fault-walks");
                        run_fault_walks(&asys, rates, spec_text, args.seed, &mut tee, &registry)
                    };
                    if human {
                        let fs = &w.faults;
                        println!(
                            "fault walks ({} seed={}): {} — {} completions in {}x{} steps, \
                             msgs/op {} vs clean {} ({}), injected {} (drop={} dup={} reorder={} delay={}), \
                             rexmit={} recovered={} absorbed={}",
                            w.rates,
                            w.seed,
                            if w.holds() { "ok" } else { "FAILED" },
                            w.completed,
                            w.walks,
                            w.steps_per_walk,
                            w.msgs_per_completion
                                .map(|x| format!("{x:.2}"))
                                .unwrap_or_else(|| "-".into()),
                            w.clean_msgs_per_completion
                                .map(|x| format!("{x:.2}"))
                                .unwrap_or_else(|| "-".into()),
                            w.degradation
                                .map(|x| format!("{x:.2}x"))
                                .unwrap_or_else(|| "-".into()),
                            fs.injected(),
                            fs.drops,
                            fs.dups,
                            fs.reorders,
                            fs.delays,
                            fs.retransmits,
                            fs.recovered,
                            fs.absorbed
                        );
                        if let Some(e) = &w.error {
                            println!("fault walk error: {e}");
                        }
                    }
                    fwalk = Some(w);
                }
            }

            let ok = clean_ok
                && fclosure.as_ref().map(|x| x.holds()).unwrap_or(true)
                && fwalk.as_ref().map(|x| x.holds()).unwrap_or(true);

            // Profiling artifacts: nondet-tagged registry counters (so the
            // deterministic metrics snapshot is unaffected), the folded-
            // stack file, and a human attribution table.
            profiler.publish(&registry);
            let agg = profiler.aggregate();
            if human {
                print_attribution(&agg);
            }
            if let Some(path) = &args.profile {
                if let Err(code) = write_profile(path, &profiler) {
                    return code;
                }
            }

            let json_doc = if args.json || args.run_dir.is_some() {
                let _p = registry.phase("report");
                let mut s = Serializer::new();
                {
                    let mut m = s.begin_map();
                    m.entry("spec", spec.name.as_str());
                    m.entry("command", "verify");
                    m.entry("n", &n);
                    m.entry("budget_states", &args.budget);
                    m.entry("optimized", &!args.no_opt);
                    m.entry("threads", &args.threads);
                    m.entry("symmetry", if reduce { "on" } else { "off" });
                    m.entry("seed", &args.seed);
                    m.entry("async_only", &args.async_only);
                    if let Some(dir) = &args.spill_dir {
                        m.entry("spill_dir", dir.as_str());
                        m.entry("spill_bytes", &args.spill_bytes);
                        m.entry("resumed", &args.resume);
                    }
                    m.entry("rendezvous", &r);
                    m.entry("asynchronous", &a);
                    m.entry("equation1", &sim);
                    m.entry("progress", &prog);
                    m.entry("fault_closure", &fclosure);
                    m.entry("fault_walk", &fwalk);
                    if !agg.is_empty() {
                        profile_entry(&mut m, &agg);
                    }
                    m.entry("holds", &ok);
                    m.end();
                }
                Some(s.into_string())
            } else {
                None
            };
            if args.json {
                println!("{}", json_doc.as_deref().unwrap());
            }
            if let Some(dir) = &args.run_dir {
                let path = format!("{dir}/verify.json");
                if let Err(e) = std::fs::write(&path, format!("{}\n", json_doc.as_deref().unwrap()))
                {
                    eprintln!("ccr: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            // Terminal counts for the status snapshot and the flight
            // record: the exact async-level numbers (what the verify
            // JSON reports), falling back to the rendezvous level.
            let (fin_states, fin_transitions, fin_outcome) = match (&a, &r) {
                (Some(x), _) => (x.states as u64, x.transitions as u64, x.outcome.clone()),
                (None, Some(x)) => (x.states as u64, x.transitions as u64, x.outcome.clone()),
                (None, None) => (0, 0, ccr_mc::Outcome::Unfinished),
            };
            // Close the flight record and fold its (nondet) counters in
            // before the metrics snapshot is written.
            timeline.finish(fin_outcome.name(), fin_states, fin_transitions);
            timeline.publish(&registry);
            if let Some(e) = timeline.take_error() {
                eprintln!("ccr: timeline: {e}");
                return ExitCode::FAILURE;
            }
            if let Err(code) = write_metrics(&args, &registry) {
                return code;
            }

            // One terminal snapshot for the whole invocation, marked
            // `finished` so `ccr watch` exits.
            if let Some(writer) = &status_writer {
                let mut rep = StatusReporter::new(writer.clone(), &args.file);
                rep.set_phase("done");
                rep.finalize(
                    &fin_outcome,
                    fin_states,
                    fin_transitions,
                    run_started.elapsed(),
                    &profiler,
                );
            }
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "table" => {
            let budget = Budget::states(args.budget);
            let refined = {
                let _p = registry.phase("refine");
                match refine(&spec, &opts) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("ccr: refinement failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            };
            let mut file = match file_sink(&args.trace) {
                Ok(s) => s,
                Err(code) => return code,
            };
            let mut beats: Box<dyn TraceSink> =
                if args.progress { Box::new(ProgressSink) } else { Box::new(NullSink) };
            let mut tee = TeeSink(&mut *file, &mut *beats);
            let run_started = Instant::now();
            let profiler =
                if args.profile.is_some() { Profiler::new() } else { Profiler::disabled() };
            let status_writer: Option<StatusWriter> = match status_writer_for(&args) {
                Ok(w) => w,
                Err(code) => return code,
            };
            let timeline = match recorder_for(&args) {
                Ok(r) => r,
                Err(code) => return code,
            };
            // `table` reproduces the paper's Table 3, so `auto` keeps the
            // concrete (unreduced) counts; only an explicit `--symmetry
            // on` switches the cells to orbit counts (and only when the
            // spec passes the scalarset check).
            let permutable = ccr_mc::spec_permutable(&spec);
            let reduce = args.symmetry == Symmetry::On && permutable;
            if !args.json {
                if args.symmetry == Symmetry::On && !permutable {
                    println!(
                        "symmetry: on -> off (spec uses order-sensitive primitives; \
                         remotes are not interchangeable, see docs/symmetry.md)"
                    );
                } else if reduce {
                    println!("symmetry: on (cells count orbits, not concrete states)");
                }
                println!("| {:>3} | {:>18} | {:>18} |", "N", "asynchronous", "rendezvous");
            }
            let mut rows = Vec::new();
            for n in 1..=args.n {
                let rv = {
                    let _p = registry.phase("explore/rendezvous");
                    let mut obs = observer(
                        &mut tee,
                        &registry,
                        &profiler,
                        &args,
                        &status_writer,
                        &timeline,
                        "explore/rendezvous",
                    );
                    explore_plain_cli_sym(
                        &RendezvousSystem::new(&spec, n),
                        reduce,
                        &budget,
                        args.engine_threads(),
                        &mut obs,
                        &registry,
                    )
                };
                let asy = {
                    let _p = registry.phase("explore/async");
                    let mut obs = observer(
                        &mut tee,
                        &registry,
                        &profiler,
                        &args,
                        &status_writer,
                        &timeline,
                        "explore/async",
                    );
                    explore_plain_cli_sym(
                        &AsyncSystem::new(&refined, n, AsyncConfig::default()),
                        reduce,
                        &budget,
                        args.engine_threads(),
                        &mut obs,
                        &registry,
                    )
                };
                if !args.json {
                    println!("| {:>3} | {:>18} | {:>18} |", n, asy.table_cell(), rv.table_cell());
                }
                rows.push((n, asy, rv));
            }
            if args.json {
                let _p = registry.phase("report");
                let mut s = Serializer::new();
                {
                    let mut m = s.begin_map();
                    m.entry("spec", spec.name.as_str());
                    m.entry("command", "table");
                    m.entry("budget_states", &args.budget);
                    m.entry("symmetry", if reduce { "on" } else { "off" });
                    m.entry_with("rows", |ser| {
                        let mut seq = ser.begin_seq();
                        for (n, asy, rv) in &rows {
                            seq.elem_with(|ser| {
                                let mut row = ser.begin_map();
                                row.entry("n", n);
                                row.entry("asynchronous", asy);
                                row.entry("rendezvous", rv);
                                row.end();
                            });
                        }
                        seq.end();
                    });
                    m.end();
                }
                println!("{}", s.into_string());
            }
            profiler.publish(&registry);
            if !args.json {
                print_attribution(&profiler.aggregate());
            }
            if let Some(path) = &args.profile {
                if let Err(code) = write_profile(path, &profiler) {
                    return code;
                }
            }
            let (states, transitions, outcome) = rows
                .last()
                .map(|(_, asy, _)| (asy.states as u64, asy.transitions as u64, asy.outcome.clone()))
                .unwrap_or((0, 0, ccr_mc::Outcome::Unfinished));
            timeline.finish(outcome.name(), states, transitions);
            timeline.publish(&registry);
            if let Some(e) = timeline.take_error() {
                eprintln!("ccr: timeline: {e}");
                return ExitCode::FAILURE;
            }
            if let Err(code) = write_metrics(&args, &registry) {
                return code;
            }
            if let Some(writer) = &status_writer {
                let mut rep = StatusReporter::new(writer.clone(), &args.file);
                rep.set_phase("done");
                rep.finalize(&outcome, states, transitions, run_started.elapsed(), &profiler);
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
