//! `ccr` — the command-line front end for the refinement pipeline.
//!
//! ```text
//! ccr fmt     <spec.ccp>                  canonical formatting
//! ccr check   <spec.ccp>                  validate the §2.4 restrictions
//! ccr refine  <spec.ccp> [--no-opt]       show pairs, costs, automata sizes
//! ccr dot     <spec.ccp> [--refined]      Graphviz to stdout
//! ccr verify  <spec.ccp> [-n N] [--budget S] [--no-opt]
//!                                         full pipeline: reachability both
//!                                         levels, safety (deadlock),
//!                                         Equation 1, forward progress
//! ccr table   <spec.ccp> [-n N..]         per-N reachability comparison
//! ```
//!
//! Specs are written in the textual form of `ccr_core::text` — see the
//! bundled files under `specs/`.

use ccr_core::dot::{dot_automaton, dot_spec};
use ccr_core::refine::{refine, RefineOptions, ReqRepMode};
use ccr_core::text::{parse_validated, to_text};
use ccr_mc::progress::check_progress_default;
use ccr_mc::search::{explore_plain, Budget};
use ccr_mc::simrel::check_simulation;
use ccr_mc::trace::explore_traced;
use ccr_runtime::asynch::{AsyncConfig, AsyncSystem};
use ccr_runtime::rendezvous::RendezvousSystem;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ccr <fmt|check|refine|dot|verify|table> <spec.ccp> \
         [-n N] [--budget STATES] [--no-opt] [--refined]"
    );
    ExitCode::from(2)
}

struct Args {
    cmd: String,
    file: String,
    n: u32,
    budget: usize,
    no_opt: bool,
    refined: bool,
}

fn parse_args() -> Option<Args> {
    let mut args = std::env::args().skip(1);
    let cmd = args.next()?;
    let file = args.next()?;
    let mut out =
        Args { cmd, file, n: 2, budget: 2_000_000, no_opt: false, refined: false };
    while let Some(a) = args.next() {
        match a.as_str() {
            "-n" => out.n = args.next()?.parse().ok()?,
            "--budget" => out.budget = args.next()?.parse().ok()?,
            "--no-opt" => out.no_opt = true,
            "--refined" => out.refined = true,
            _ => return None,
        }
    }
    Some(out)
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else { return usage() };
    let src = match std::fs::read_to_string(&args.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ccr: cannot read {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    let spec = match parse_validated(&src) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ccr: {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    let opts = RefineOptions {
        reqrep: if args.no_opt { ReqRepMode::Off } else { ReqRepMode::Auto },
    };

    match args.cmd.as_str() {
        "fmt" => {
            print!("{}", to_text(&spec));
            ExitCode::SUCCESS
        }
        "check" => {
            // parse_validated already ran the checks.
            println!(
                "ok: {} ({} home states, {} remote states, {} messages)",
                spec.name,
                spec.home.states.len(),
                spec.remote.states.len(),
                spec.msgs.len()
            );
            ExitCode::SUCCESS
        }
        "refine" => {
            let r = match refine(&spec, &opts) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("ccr: refinement failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("protocol {}", spec.name);
            if r.pairs.is_empty() {
                println!("  request/reply pairs: none");
            } else {
                for p in &r.pairs {
                    println!(
                        "  pair: {} answered by {} ({:?})",
                        spec.msg_name(p.req),
                        spec.msg_name(p.repl),
                        p.direction
                    );
                }
            }
            println!(
                "  home automaton: {} states ({} transient), {} edges",
                r.home.states.len(),
                r.home.transient_count(),
                r.home.edges.len()
            );
            println!(
                "  remote automaton: {} states ({} transient), {} edges",
                r.remote.states.len(),
                r.remote.transient_count(),
                r.remote.edges.len()
            );
            println!("  static cost of one round of every rendezvous: {} messages", r.total_static_cost());
            ExitCode::SUCCESS
        }
        "dot" => {
            if args.refined {
                match refine(&spec, &opts) {
                    Ok(r) => {
                        print!("{}", dot_automaton(&r.home, &format!("{} home (refined)", spec.name)));
                        println!();
                        print!(
                            "{}",
                            dot_automaton(&r.remote, &format!("{} remote (refined)", spec.name))
                        );
                    }
                    Err(e) => {
                        eprintln!("ccr: refinement failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                print!("{}", dot_spec(&spec));
            }
            ExitCode::SUCCESS
        }
        "verify" => {
            let budget = Budget::states(args.budget);
            let n = args.n;
            let refined = match refine(&spec, &opts) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("ccr: refinement failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let rv = RendezvousSystem::new(&spec, n);
            let r = explore_traced(&rv, &budget, |_| None, true);
            println!("rendezvous level  (n={n}): {} states, {:?}", r.states, r.outcome);
            if r.trail.is_some() {
                println!("{}", r.trail_text());
                return ExitCode::FAILURE;
            }
            let asys = AsyncSystem::new(&refined, n, AsyncConfig::default());
            let a = explore_traced(&asys, &budget, |_| None, true);
            println!("asynchronous level (n={n}): {} states, {:?}", a.states, a.outcome);
            if a.trail.is_some() {
                println!("{}", a.trail_text());
                return ExitCode::FAILURE;
            }
            let sim = check_simulation(&asys, &rv, &budget);
            println!(
                "Equation 1: {} ({} transitions, {} stutters, {} mapped)",
                if sim.holds() { "holds" } else { "VIOLATED" },
                sim.transitions_checked,
                sim.stutters,
                sim.mapped_steps
            );
            if let Some(v) = &sim.violation {
                println!("{v}");
                return ExitCode::FAILURE;
            }
            let prog = check_progress_default(&asys, &budget);
            println!(
                "forward progress: {} ({} states, {} livelocked, {} deadlocked)",
                if prog.holds() { "holds" } else { "VIOLATED" },
                prog.states,
                prog.livelocked_states,
                prog.deadlocked_states
            );
            if prog.holds() && sim.holds() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "table" => {
            let budget = Budget::states(args.budget);
            let refined = match refine(&spec, &opts) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("ccr: refinement failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("| {:>3} | {:>18} | {:>18} |", "N", "asynchronous", "rendezvous");
            for n in 1..=args.n {
                let rv = explore_plain(&RendezvousSystem::new(&spec, n), &budget);
                let asy = explore_plain(
                    &AsyncSystem::new(&refined, n, AsyncConfig::default()),
                    &budget,
                );
                println!("| {:>3} | {:>18} | {:>18} |", n, asy.table_cell(), rv.table_cell());
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
