//! # coherence-refinement
//!
//! A Rust reproduction of *Nalumasu & Gopalakrishnan, "Deriving Efficient
//! Cache Coherence Protocols through Refinement"* (IPPS 1998): specify DSM
//! cache-coherence protocols as atomic **rendezvous** interactions over a
//! star topology, verify them cheaply at that level, then mechanically
//! **refine** them into efficient asynchronous request/ack/nack protocols
//! with transient states, bounded home buffering and the request/reply
//! optimization.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`ccr_core`] — the protocol IR, validation and the refinement
//!   procedure (the paper's contribution);
//! * [`ccr_runtime`] — executable rendezvous and asynchronous semantics,
//!   simulators and the §4 abstraction function;
//! * [`ccr_mc`] — the explicit-state model checker (reachability,
//!   invariants, the Equation 1 simulation check, progress checking);
//! * [`ccr_protocols`] — the migratory and invalidate protocols of the
//!   paper, a token protocol, and the hand-written Avalanche baseline;
//! * [`ccr_dsm`] — a DSM machine simulator with workloads and a threaded
//!   deployment-style runner.
//!
//! ## Quickstart
//!
//! ```
//! use coherence_refinement::prelude::*;
//!
//! // The paper's migratory protocol (Figures 2 and 3).
//! let refined = migratory_refined(&MigratoryOptions::checking());
//!
//! // Refinement found the paper's two request/reply pairs automatically.
//! assert_eq!(refined.pairs.len(), 2);
//!
//! // Model-check both levels for 2 remotes.
//! let rv = RendezvousSystem::new(&refined.spec, 2);
//! let asys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
//! let r1 = explore_plain(&rv, &Budget::default());
//! let r2 = explore_plain(&asys, &Budget::default());
//! assert!(r1.states < r2.states); // rendezvous is much cheaper to verify
//!
//! // Equation 1: every asynchronous step abstracts to a stutter or a
//! // rendezvous step — the refinement is sound.
//! let sim = check_simulation(&asys, &rv, &Budget::default());
//! assert!(sim.holds());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use ccr_core;
pub use ccr_dsm;
pub use ccr_mc;
pub use ccr_protocols;
pub use ccr_runtime;

/// Commonly used items in one import.
pub mod prelude {
    pub use ccr_core::builder::ProtocolBuilder;
    pub use ccr_core::expr::Expr;
    pub use ccr_core::ids::{MsgType, ProcessId, RemoteId, StateId, VarId};
    pub use ccr_core::process::ProtocolSpec;
    pub use ccr_core::refine::{refine, RefineOptions, RefinedProtocol, ReqRepMode};
    pub use ccr_core::value::Value;
    pub use ccr_dsm::machine::{Machine, MachineConfig};
    pub use ccr_dsm::workload::{HotSpot, Migrating, ProducerConsumer, ReadMostly, Workload};
    pub use ccr_mc::progress::check_progress_default;
    pub use ccr_mc::search::{explore, explore_plain, Budget};
    pub use ccr_mc::simrel::check_simulation;
    pub use ccr_protocols::hand::migratory_hand;
    pub use ccr_protocols::invalidate::{invalidate, invalidate_refined, InvalidateOptions};
    pub use ccr_protocols::migratory::{migratory, migratory_refined, MigratoryOptions};
    pub use ccr_protocols::token::token;
    pub use ccr_runtime::asynch::{AsyncConfig, AsyncSystem};
    pub use ccr_runtime::rendezvous::RendezvousSystem;
    pub use ccr_runtime::sched::{BiasedSched, RandomSched, RoundRobinSched};
    pub use ccr_runtime::sim::Simulator;
}
